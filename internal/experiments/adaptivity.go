package experiments

import (
	"context"
)

// AblationAdaptivity lays out the §2 design space of history-length
// adaptivity on one axis:
//
//	gshare                 — fixed-length pattern history
//	DHLF [12]              — per-phase pattern length, chosen by hardware
//	elastic pattern [21]   — per-branch pattern length, chosen by profiling
//	fixed length path      — fixed-length path history
//	variable length path   — per-branch path length, chosen by profiling
//
// The paper's thesis decomposes into two deltas this table exposes: path
// beats pattern at equal adaptivity, and per-branch selection beats fixed
// at equal history kind.
func (s *Suite) AblationAdaptivity(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-adaptivity")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-adaptivity",
		Title: "Extension: the history-length adaptivity spectrum (paper §2), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}
