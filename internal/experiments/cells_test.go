package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Registry()) {
		t.Fatalf("Select(\"\") = %d entries, %v; want the full registry", len(all), err)
	}
	got, err := Select(" headline , fig9 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "headline" || got[1].ID != "fig9" {
		t.Fatalf("Select = %v", got)
	}
	// Fault-injection entries resolve too (paperrepro exposes them).
	if _, err := Select("selftest-panic"); err != nil {
		t.Errorf("fault entry not selectable: %v", err)
	}
	if _, err := Select("headline,nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestWriteText(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteText(dir, "headline", "Headline", "body\n")
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "headline.txt") {
		t.Fatalf("path = %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "Headline\n\nbody\n" || string(data) != string(RenderText("Headline", "body\n")) {
		t.Fatalf("artifact bytes %q", data)
	}
	if _, err := WriteText(dir, "", "t", "x"); err == nil {
		t.Error("empty ID accepted")
	}
}

func TestWriteBenchBlob(t *testing.T) {
	dir := t.TempDir()
	rep := obs.NewReport("headline", "Abstract's gcc numbers")
	blob, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path, err := WriteBenchBlob(dir, "headline", blob)
	if err != nil {
		t.Fatal(err)
	}
	if path != obs.BenchPath(dir, "headline") {
		t.Fatalf("path = %q", path)
	}
	back, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "headline" || back.Title != rep.Title {
		t.Fatalf("round trip lost content: %+v", back)
	}
	if _, err := WriteBenchBlob(dir, "fig9", blob); err == nil ||
		!strings.Contains(err.Error(), "names") {
		t.Errorf("misnamed blob accepted: %v", err)
	}
	if _, err := WriteBenchBlob(dir, "headline", []byte("not json")); err == nil {
		t.Error("invalid blob accepted")
	}
}
