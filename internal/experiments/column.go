package experiments

import (
	"context"

	"repro/internal/bpred"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the experiment layer's seam onto the unified execution
// engine (internal/engine): experiments describe a *column* — every
// predictor configuration they want measured on one benchmark trace —
// as an engine cell, and the engine owns memoization, strategy choice
// (fused kernel / per-cell oracle / checkpointed segmented replay), and
// the worker pool. Cells are constructors rather than predictors so the
// column builder can materialize fresh state per run and apply
// same-history sharing (vlp.ShareCondHistories) before replay.

// CondCell builds one conditional predictor of a column. Cells must
// return fresh predictors on every call: the column builder may rebind
// their path history for sharing.
type CondCell = engine.CondCell

// IndirectCell builds one indirect predictor of a column.
type IndirectCell = engine.IndirectCell

// RunCondColumn measures every predictor over one pass of src (or one
// pass per predictor when perCell is set) and returns the per-predictor
// results in predictor order. Callers that need post-run predictor
// state (instrumentation counters) use this directly; rate-only callers
// go through Suite.CondColumn, which memoizes.
func RunCondColumn(ctx context.Context, preds []bpred.CondPredictor, src trace.Source, perCell bool) ([]sim.Result, error) {
	return engine.RunCondColumn(ctx, preds, src, perCell)
}

// RunIndirectColumn is RunCondColumn for indirect predictors.
func RunIndirectColumn(ctx context.Context, preds []bpred.IndirectPredictor, src trace.Source, perCell bool) ([]sim.Result, error) {
	return engine.RunIndirectColumn(ctx, preds, src, perCell)
}

// CondColumn submits the column as an engine cell over the benchmark's
// test trace and returns each cell's misprediction percentage in cell
// order. Results are memoized per canonical cell key under the engine's
// singleflight discipline, so every surface that renders the same
// artifact — CLI, the sweep service's job workers, tests — shares one
// replay. The id names the column's *content* (e.g. "fig9"): two call
// sites may use the same id only if they build identical cells.
func (s *Suite) CondColumn(ctx context.Context, id, bench string, cells []CondCell) ([]float64, error) {
	return s.eng.Column(ctx, engine.Cell{Trace: bench, ColumnID: id, Cond: cells})
}

// IndirectColumn is CondColumn for indirect predictors.
func (s *Suite) IndirectColumn(ctx context.Context, id, bench string, cells []IndirectCell) ([]float64, error) {
	return s.eng.Column(ctx, engine.Cell{Trace: bench, ColumnID: id, Indirect: cells})
}
