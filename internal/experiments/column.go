package experiments

import (
	"context"

	"repro/internal/bpred"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vlp"
)

// This file is the experiment layer's seam onto the fused replay kernel
// (sim.RunMany): experiments describe a *column* — every predictor
// configuration they want measured on one benchmark trace — and the
// column runs in a single pass over that trace instead of one pass per
// cell. Cells are constructors rather than predictors so the column
// builder can materialize fresh state per run and apply same-history
// sharing (vlp.ShareCondHistories) before replay; Config.PerCell routes
// the same cells through the sequential per-predictor driver instead,
// which the differential tests use as the oracle for the fused path.

// CondCell builds one conditional predictor of a column. Cells must
// return fresh predictors on every call: the column builder may rebind
// their path history for sharing.
type CondCell func() (bpred.CondPredictor, error)

// IndirectCell builds one indirect predictor of a column.
type IndirectCell func() (bpred.IndirectPredictor, error)

// RunCondColumn measures every predictor over one pass of src (or one
// pass per predictor when perCell is set) and returns the per-predictor
// results in predictor order. A partial replay — canceled context or
// failed source — is refused as a measurement, like condPercent.
// Callers that need post-run predictor state (instrumentation counters)
// use this directly; rate-only callers go through Suite.CondColumn,
// which memoizes.
func RunCondColumn(ctx context.Context, preds []bpred.CondPredictor, src trace.Source, perCell bool) ([]sim.Result, error) {
	if perCell {
		results := make([]sim.Result, len(preds))
		for i, p := range preds {
			results[i] = sim.RunCond(ctx, p, src, sim.Options{})
			if err := results[i].Err; err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	jobs, order := condColumnJobs(preds)
	res := sim.RunMany(ctx, jobs, src, sim.Options{})
	out := make([]sim.Result, len(preds))
	for pi, ji := range order {
		if err := res[ji].Err; err != nil {
			return nil, err
		}
		out[pi] = res[ji]
	}
	return out, nil
}

// condColumnJobs lays a conditional column out as fused-kernel jobs:
// predictors that share a path-history configuration become a tie-run —
// members first, then the observer that advances their shared history
// once per record — and everything else runs as an independent job. It
// returns the job slice plus the job index of each predictor, since
// grouping permutes the order.
func condColumnJobs(preds []bpred.CondPredictor) ([]sim.Job, []int) {
	groups := vlp.ShareCondHistories(preds)
	jobs := make([]sim.Job, 0, len(preds)+len(groups))
	order := make([]int, len(preds))
	for i := range order {
		order[i] = -1
	}
	for _, g := range groups {
		for mi, p := range g.Members {
			j := sim.CondJob(preds[p])
			j.Tie = mi > 0
			order[p] = len(jobs)
			jobs = append(jobs, j)
		}
		jobs = append(jobs, sim.ObserverJob(g.Observer))
	}
	for i, p := range preds {
		if order[i] < 0 {
			order[i] = len(jobs)
			jobs = append(jobs, sim.CondJob(p))
		}
	}
	return jobs, order
}

// RunIndirectColumn is RunCondColumn for indirect predictors. Indirect
// columns have no history sharing (every indirect predictor owns its
// target history), so the fused path is a plain RunManyIndirect.
func RunIndirectColumn(ctx context.Context, preds []bpred.IndirectPredictor, src trace.Source, perCell bool) ([]sim.Result, error) {
	if perCell {
		results := make([]sim.Result, len(preds))
		for i, p := range preds {
			results[i] = sim.RunIndirect(ctx, p, src, sim.Options{})
			if err := results[i].Err; err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	res := sim.RunManyIndirect(ctx, preds, src, sim.Options{})
	for i := range res {
		if err := res[i].Err; err != nil {
			return nil, err
		}
	}
	return res, nil
}

// CondColumn builds the cells, replays them fused over the benchmark's
// test trace, and returns each cell's misprediction percentage in cell
// order. Results are memoized per (benchmark, column id) under the
// suite's singleflight discipline, so every surface that renders the
// same artifact — CLI, the sweep service's job workers, tests — shares
// one replay. The id names the column's *content* (e.g. "fig9"): two
// call sites may use the same id only if they build identical cells.
func (s *Suite) CondColumn(ctx context.Context, id, bench string, cells []CondCell) ([]float64, error) {
	f := getFlight(&s.mu, s.condCols, columnKey{bench, id})
	return f.do(func() ([]float64, error) {
		preds := make([]bpred.CondPredictor, len(cells))
		for i, cell := range cells {
			p, err := cell()
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		src, err := s.TestSource(bench)
		if err != nil {
			return nil, err
		}
		s.computedColumns.Add(1)
		if buf, jobs, order := s.checkpointColumn(src, condColumnJobs, preds); jobs != nil {
			res := s.runColumnCheckpointed(ctx, "cond", bench, id, jobs, buf)
			out := make([]sim.Result, len(preds))
			for pi, ji := range order {
				if err := res[ji].Err; err != nil {
					return nil, err
				}
				out[pi] = res[ji]
			}
			return percents(out), nil
		}
		results, err := RunCondColumn(ctx, preds, src, s.Cfg.PerCell)
		if err != nil {
			return nil, err
		}
		return percents(results), nil
	})
}

// checkpointColumn decides whether a column replay goes through the
// checkpointed runner: SnapDir must be configured, the fused kernel
// must be in play (PerCell runs the sequential oracle), the trace must
// be an in-memory buffer (the suite's TestSource always is), and every
// participant must support StateCodec. It returns nil jobs when any
// condition fails, which routes the column through the plain path.
func (s *Suite) checkpointColumn(src trace.Source, layout func([]bpred.CondPredictor) ([]sim.Job, []int),
	preds []bpred.CondPredictor) (*trace.Buffer, []sim.Job, []int) {
	if s.Cfg.SnapDir == "" || s.Cfg.PerCell {
		return nil, nil, nil
	}
	buf, ok := src.(*trace.Buffer)
	if !ok {
		return nil, nil, nil
	}
	jobs, order := layout(preds)
	if !checkpointable(jobs) {
		return nil, nil, nil
	}
	return buf, jobs, order
}

// IndirectColumn is CondColumn for indirect predictors.
func (s *Suite) IndirectColumn(ctx context.Context, id, bench string, cells []IndirectCell) ([]float64, error) {
	f := getFlight(&s.mu, s.indCols, columnKey{bench, id})
	return f.do(func() ([]float64, error) {
		preds := make([]bpred.IndirectPredictor, len(cells))
		for i, cell := range cells {
			p, err := cell()
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		src, err := s.TestSource(bench)
		if err != nil {
			return nil, err
		}
		s.computedColumns.Add(1)
		if buf, ok := src.(*trace.Buffer); ok && s.Cfg.SnapDir != "" && !s.Cfg.PerCell {
			jobs := make([]sim.Job, len(preds))
			for i, p := range preds {
				jobs[i] = sim.IndirectJob(p)
			}
			if checkpointable(jobs) {
				res := s.runColumnCheckpointed(ctx, "indirect", bench, id, jobs, buf)
				for i := range res {
					if err := res[i].Err; err != nil {
						return nil, err
					}
				}
				return percents(res), nil
			}
		}
		results, err := RunIndirectColumn(ctx, preds, src, s.Cfg.PerCell)
		if err != nil {
			return nil, err
		}
		return percents(results), nil
	})
}

func percents(results []sim.Result) []float64 {
	out := make([]float64, len(results))
	for i := range results {
		out[i] = results[i].Percent()
	}
	return out
}
