package experiments

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/engine/pool"
	"repro/internal/tablefmt"
)

// PathInfoResult carries the ideal predictability-by-depth analysis.
type PathInfoResult struct {
	Benchmarks []string
	Depths     []int
	// Weight[b][i] is the percentage of benchmark b's dynamic
	// conditional weight whose sufficient path depth is Depths[i].
	Weight [][]float64
	// MeanAcc[b][i] is the execution-weighted ideal accuracy at
	// Depths[i] on benchmark b.
	MeanAcc [][]float64
}

// AblationPathInfo reproduces the Evers-et-al.-style measurement behind
// §5.3: for each benchmark, how much of the dynamic conditional-branch
// weight is satisfied by each path depth, using an unbounded ideal
// predictor that isolates path *information* from table capacity. The
// concentration of weight at shallow depths — with a long tail needing
// deep paths — is exactly the distribution that makes per-branch length
// selection profitable.
func (s *Suite) AblationPathInfo(ctx context.Context) (*Report, error) {
	res := &PathInfoResult{Benchmarks: ablationBenches}
	res.Weight = make([][]float64, len(res.Benchmarks))
	res.MeanAcc = make([][]float64, len(res.Benchmarks))
	err := pool.ForEach(ctx, len(res.Benchmarks), func(i int) error {
		src, err := s.TestSource(res.Benchmarks[i])
		if err != nil {
			return err
		}
		rep, err := analysis.Analyze(src, analysis.Config{})
		if err != nil {
			return err
		}
		depths, weight := rep.SufficientDepthHistogram()
		res.Depths = depths
		res.Weight[i] = weight
		res.MeanAcc[i] = rep.MeanAccuracyAt()
		return nil
	})
	if err != nil {
		return nil, err
	}

	header := []string{"Benchmark"}
	for _, d := range res.Depths {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	tb := tablefmt.New(header...)
	for b, name := range res.Benchmarks {
		cells := []interface{}{name}
		for i := range res.Depths {
			cells = append(cells, fmt.Sprintf("%.1f%%", res.Weight[b][i]))
		}
		tb.Row(cells...)
	}
	text := "Dynamic weight by sufficient path depth (ideal, unbounded tables):\n" +
		tb.String()

	tb2 := tablefmt.New(header...)
	for b, name := range res.Benchmarks {
		cells := []interface{}{name}
		for i := range res.Depths {
			cells = append(cells, fmt.Sprintf("%.2f%%", 100*res.MeanAcc[b][i]))
		}
		tb2.Row(cells...)
	}
	text += "\nIdeal accuracy by depth:\n" + tb2.String()

	return &Report{
		ID:    "ablation-pathinfo",
		Title: "Extension: how much path information branches need (paper §5.3, after Evers et al. [8])",
		Text:  text,
		Data:  res,
	}, nil
}
