package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
)

func condCellGshare(budget int) CondCell {
	return func() (bpred.CondPredictor, error) { return gshare.New(budget) }
}

// TestFusedMatchesPerCellOracle is the experiment-level differential
// gate across every engine strategy: a fused suite, a per-cell oracle
// suite, and a segmented (checkpointing, SnapDir) suite at the same
// scale must render byte-identical artifact text for every
// column-driven experiment shape — the per-benchmark comparisons, the
// size-sweep grids (where history sharing kicks in), the variant
// ablations, the indirect field, and the experiments that keep their
// predictors for post-run state (HFNT, interference).
func TestFusedMatchesPerCellOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("three full small-scale suites")
	}
	const scale = 60000
	fused := NewSuite(Config{BaseRecords: scale})
	oracle := NewSuite(Config{BaseRecords: scale, PerCell: true})
	segmented := NewSuite(Config{BaseRecords: scale, SnapDir: t.TempDir()})
	ctx := context.Background()
	for _, id := range []string{
		"fig5", "fig7", "fig9", "fig10", "headline",
		"ablation-dynsel", "ablation-indfield",
		"ablation-hfnt", "ablation-interference", "ablation-stability",
	} {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := e.Run(fused, ctx)
		if err != nil {
			t.Fatalf("%s fused: %v", id, err)
		}
		or, err := e.Run(oracle, ctx)
		if err != nil {
			t.Fatalf("%s per-cell: %v", id, err)
		}
		sr, err := e.Run(segmented, ctx)
		if err != nil {
			t.Fatalf("%s segmented: %v", id, err)
		}
		if fr.Text != or.Text {
			t.Errorf("%s: fused and per-cell artifacts differ\n--- fused ---\n%s\n--- per-cell ---\n%s",
				id, fr.Text, or.Text)
		}
		if fr.Text != sr.Text {
			t.Errorf("%s: fused and segmented artifacts differ\n--- fused ---\n%s\n--- segmented ---\n%s",
				id, fr.Text, sr.Text)
		}
		if strings.TrimSpace(fr.Text) == "" {
			t.Errorf("%s rendered empty text", id)
		}
	}
	if n := fused.ComputedColumns(); n == 0 {
		t.Error("fused suite never exercised the column kernel")
	}
}

// TestColumnMemoized pins the (benchmark, column id) memoization: two
// calls with the same key replay once, a different id replays again.
func TestColumnMemoized(t *testing.T) {
	s := testSuite()
	ctx := context.Background()
	base := s.ComputedColumns()
	cells := []CondCell{condCellGshare(1024), condCellGshare(4096)}
	a, err := s.CondColumn(ctx, "memo-test", "go", cells)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CondColumn(ctx, "memo-test", "go", cells)
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputedColumns() != base+1 {
		t.Errorf("same key computed %d times, want 1", s.ComputedColumns()-base)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("memoized column returned different rates: %v vs %v", a, b)
		}
	}
	if _, err := s.CondColumn(ctx, "memo-test-2", "go", cells); err != nil {
		t.Fatal(err)
	}
	if s.ComputedColumns() != base+2 {
		t.Errorf("distinct id did not recompute (computed %d, want 2)", s.ComputedColumns()-base)
	}
}
