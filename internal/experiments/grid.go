package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bpred"
	"repro/internal/bpred/agree"
	"repro/internal/bpred/bimodal"
	"repro/internal/bpred/bimode"
	"repro/internal/bpred/dhlf"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/gskew"
	"repro/internal/bpred/hybrid"
	"repro/internal/bpred/twolevel"
	"repro/internal/bpred/varhist"
	"repro/internal/engine"
	"repro/internal/factory"
	"repro/internal/profile"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// This file is the declarative half of the experiment layer: every
// memoized column the experiments replay is DECLARED here — as a
// variants grid (condGrids / indGrids) or a parameterized builder
// (ColumnCell's switch) — and the experiments only decide which grids
// to run and how to render the results. Declaring columns in one place
// buys two things:
//
//   - ColumnCell can rebuild any column from its canonical engine.Key,
//     which is what lets the sweep service's /v1/jobs workers execute
//     single cells (finer work-stealing than whole experiments);
//   - GridKeys can enumerate an experiment's cells statically, without
//     executing anything, which the distributed coordinator uses to
//     pre-warm shared cells before fanning out experiment jobs.
//
// The invariant carried over from the engine's memoization contract:
// a column id names the column's CONTENT, so the cells built here for
// an id must be identical to the cells any experiment builds for it.

// condGrid declares one conditional variants grid: the variant names
// and the per-(variant, benchmark) predictor constructor. Grids run
// over ablationBenches as one engine cell per benchmark.
type condGrid struct {
	variants []string
	mk       func(s *Suite, v int, bench string) (bpred.CondPredictor, error)
}

// abBudget is the ablation grids' shared hardware budget (16 KB).
const abBudget = 16 * 1024

// condGrids maps a column id to its grid declaration. Every entry runs
// over ablationBenches at abBudget.
var condGrids = map[string]condGrid{
	"ablation-rotation": {
		variants: []string{"VLP (rotated)", "VLP (no rotation)"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, condK(abBudget))
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{NoRotation: v == 1})
		},
	},
	"ablation-returns": {
		variants: []string{"returns excluded", "returns stored"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, condK(abBudget))
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{StoreReturns: v == 1})
		},
	},
	"ablation-subset": {
		variants: []string{"all 32 hash functions", "subset {1,2,4,8,16,32}"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			k := condK(abBudget)
			if v == 0 {
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
			}
			src, err := s.ProfileSource(bench)
			if err != nil {
				return nil, err
			}
			prof, _, err := profile.Cond(src, profile.Config{TableBits: k, Lengths: []int{1, 2, 4, 8, 16, 32}})
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
		},
	},
	"ablation-heuristic": {
		variants: []string{"1 cand / 1 iter", "3 cand / 3 iter", "3 cand / 7 iter", "5 cand / 7 iter"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			settings := [...]struct{ cands, iters int }{{1, 1}, {3, 3}, {3, 7}, {5, 7}}
			src, err := s.ProfileSource(bench)
			if err != nil {
				return nil, err
			}
			prof, _, err := profile.Cond(src, profile.Config{
				TableBits: condK(abBudget), Candidates: settings[v].cands, Iterations: settings[v].iters,
			})
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
		},
	},
	"ablation-dynsel": {
		variants: []string{"fixed length path", "dynamic selection (hw)", "variable length path (profiled)"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			k := condK(abBudget)
			switch v {
			case 0:
				fixedLen, err := s.suiteFixedLength(false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, vlp.Fixed{L: fixedLen}, vlp.Options{})
			case 1:
				return vlp.NewDynCond(abBudget, nil, 12, 4)
			default:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
			}
		},
	},
	"ablation-histstack": {
		variants: []string{"flat history", "stack (restore)", "stack (combine 2)"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, condK(abBudget))
			if err != nil {
				return nil, err
			}
			opts := vlp.Options{HistoryStack: v >= 1}
			if v == 2 {
				opts.HistoryCombine = 2
			}
			return vlp.NewCond(abBudget, prof.Selector(), opts)
		},
	},
	"ablation-competitors": {
		variants: []string{"bimodal", "GAs", "PAs", "gshare", "agree", "bi-mode", "gskew", "hybrid", "FLP(tuned)", "VLP"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			k := condK(abBudget)
			switch v {
			case 0:
				return bimodal.New(abBudget)
			case 1:
				return twolevel.NewGAsBudget(abBudget, 12)
			case 2:
				return twolevel.NewPAs(k, 10, 8)
			case 3:
				return gshare.New(abBudget)
			case 4:
				return agree.New(abBudget, 12)
			case 5:
				return bimode.New(abBudget)
			case 6:
				return gskew.New(abBudget)
			case 7:
				g, err := gshare.New(abBudget / 2)
				if err != nil {
					return nil, err
				}
				b, err := bimodal.New(abBudget / 4)
				if err != nil {
					return nil, err
				}
				return hybrid.New(g, b, 13), nil // 2^13 chooser counters = 2KB
			case 8:
				l, err := s.TunedFixedLength(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, vlp.Fixed{L: l}, vlp.Options{})
			default:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
			}
		},
	},
	"ablation-adaptivity": {
		variants: []string{"gshare", "DHLF [12]", "elastic pattern [21]", "FLP", "VLP"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			k := condK(abBudget)
			switch v {
			case 0:
				return gshare.New(abBudget)
			case 1:
				return dhlf.New(abBudget, 0)
			case 2:
				src, err := s.ProfileSource(bench)
				if err != nil {
					return nil, err
				}
				prof, _, err := profile.PatternCond(src, profile.Config{TableBits: k})
				if err != nil {
					return nil, err
				}
				return varhist.New(abBudget, prof.Selector())
			case 3:
				fixedLen, err := s.suiteFixedLength(false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, vlp.Fixed{L: fixedLen}, vlp.Options{})
			default:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
			}
		},
	},
	"ablation-isabits": {
		variants: []string{"full number (5 bits)", "bucket hint + hw refine (2 bits)", "hardware only (0 bits)"},
		mk: func(s *Suite, v int, bench string) (bpred.CondPredictor, error) {
			k := condK(abBudget)
			switch v {
			case 0:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(abBudget, prof.Selector(), vlp.Options{})
			case 1:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCoarseCond(abBudget, nil, prof.Lengths, prof.Default, 12)
			default:
				return vlp.NewDynCond(abBudget, nil, 12, 4)
			}
		},
	},
}

// indGrid is condGrid for indirect columns; grids run over the
// indirect-heavy benchmarks.
type indGrid struct {
	variants []string
	budget   int
	mk       func(s *Suite, v int, bench string) (bpred.IndirectPredictor, error)
}

var indGrids = map[string]indGrid{
	"ablation-indfield": {
		variants: []string{"btb", "pattern", "path", "path-peraddr", "cascaded", "FLP", "VLP"},
		budget:   2048,
		mk: func(s *Suite, v int, bench string) (bpred.IndirectPredictor, error) {
			const budget = 2048
			names := []string{"btb", "pattern", "path", "path-peraddr", "cascaded", "FLP", "VLP"}
			k := indK(budget)
			spec := factory.IndirectSpec{Name: names[v], BudgetBytes: budget}
			switch names[v] {
			case "FLP":
				fixedLen, err := s.suiteFixedLength(true, k)
				if err != nil {
					return nil, err
				}
				spec = factory.IndirectSpec{Name: "flp", BudgetBytes: budget, FixedLength: fixedLen}
			case "VLP":
				prof, err := s.Profile(bench, true, k)
				if err != nil {
					return nil, err
				}
				spec = factory.IndirectSpec{Name: "vlp", BudgetBytes: budget, Profile: prof}
			}
			return factory.NewIndirect(spec)
		},
	},
}

// condGridCells builds the column for one (grid, benchmark) pair.
func condGridCells(s *Suite, id, bench string) []CondCell {
	g := condGrids[id]
	return condVariantCells(bench, len(g.variants),
		func(v int, bench string) (bpred.CondPredictor, error) { return g.mk(s, v, bench) })
}

// indGridCells is condGridCells for indirect grids.
func indGridCells(s *Suite, id, bench string) []IndirectCell {
	g := indGrids[id]
	cells := make([]IndirectCell, len(g.variants))
	for v := range cells {
		v := v
		cells[v] = func() (bpred.IndirectPredictor, error) { return g.mk(s, v, bench) }
	}
	return cells
}

// runCondGrid executes a declared conditional grid as a plan — one
// engine cell per ablation benchmark — and tabulates the rates.
func (s *Suite) runCondGrid(ctx context.Context, id string) (*AblationResult, error) {
	g, ok := condGrids[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown grid %q", id)
	}
	return s.runCondVariants(ctx, id, ablationBenches, g.variants,
		func(v int, bench string) (bpred.CondPredictor, error) { return g.mk(s, v, bench) })
}

// runIndGrid executes a declared indirect grid as a plan over the
// indirect-heavy benchmarks (minus any the suite skipped).
func (s *Suite) runIndGrid(ctx context.Context, id string) (*AblationResult, error) {
	g, ok := indGrids[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown grid %q", id)
	}
	heavy, err := s.benches(workload.IndirectHeavy())
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Benchmarks: names(heavy),
		Variants:   g.variants,
		Rates:      newRates(len(g.variants), len(heavy)),
	}
	plan := engine.NewPlan()
	for _, b := range heavy {
		plan.Indirect(b.Name(), id, indGridCells(s, id, b.Name()))
	}
	cols, err := s.eng.Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	for b := range heavy {
		for v := range g.variants {
			res.Rates[v][b] = cols[b][v]
		}
	}
	return res, nil
}

// compareBudget parses the budget out of a parameterized comparison
// column id ("compare-cond-16384" → 16384).
func compareBudget(id, prefix string) (int, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// ColumnCell rebuilds the engine cell for a canonical key: the
// server-side half of cell jobs. Any column id an experiment memoizes —
// a variants grid, a parameterized comparison, a figure sweep — resolves
// here to cells identical to the ones the experiment itself would
// build, so a cell executed for a remote job and the same cell executed
// locally share one replay and one result.
func (s *Suite) ColumnCell(ctx context.Context, key engine.Key) (engine.Cell, error) {
	id := key.ColumnID
	if key.Class == engine.ClassCond {
		if _, ok := condGrids[id]; ok {
			return engine.Cell{Trace: key.Trace, ColumnID: id, Cond: condGridCells(s, id, key.Trace)}, nil
		}
		if budget, ok := compareBudget(id, "compare-cond-"); ok {
			k := condK(budget)
			fixedLen, err := s.suiteFixedLength(false, k)
			if err != nil {
				return engine.Cell{}, err
			}
			return engine.Cell{Trace: key.Trace, ColumnID: id,
				Cond: s.condCompareCells(key.Trace, budget, fixedLen, k)}, nil
		}
		switch id {
		case "headline-cond":
			return engine.Cell{Trace: key.Trace, ColumnID: id, Cond: s.headlineCondCells()}, nil
		case "fig9":
			cells, err := s.figure9Cells(ctx)
			if err != nil {
				return engine.Cell{}, err
			}
			return engine.Cell{Trace: key.Trace, ColumnID: id, Cond: cells}, nil
		}
		return engine.Cell{}, fmt.Errorf("experiments: unknown conditional column %q", id)
	}
	if _, ok := indGrids[id]; ok {
		return engine.Cell{Trace: key.Trace, ColumnID: id, Indirect: indGridCells(s, id, key.Trace)}, nil
	}
	if budget, ok := compareBudget(id, "compare-ind-"); ok {
		k := indK(budget)
		fixedLen, err := s.suiteFixedLength(true, k)
		if err != nil {
			return engine.Cell{}, err
		}
		return engine.Cell{Trace: key.Trace, ColumnID: id,
			Indirect: s.indCompareCells(key.Trace, budget, fixedLen, k)}, nil
	}
	switch id {
	case "headline-ind":
		return engine.Cell{Trace: key.Trace, ColumnID: id, Indirect: s.headlineIndCells()}, nil
	case "fig10":
		cells, err := s.figure10Cells(ctx)
		if err != nil {
			return engine.Cell{}, err
		}
		return engine.Cell{Trace: key.Trace, ColumnID: id, Indirect: cells}, nil
	}
	return engine.Cell{}, fmt.Errorf("experiments: unknown indirect column %q", id)
}

// GridKeys enumerates the engine cells an experiment's plan will
// contain, without executing anything — benchmarks come from the static
// workload lists, so no suite (and no trace generation) is needed. The
// distributed coordinator uses it to pre-warm cells shared between
// experiments; experiments whose work is not cell-shaped (workload
// summaries, pipeline models, instrumented predictors) return nil.
func GridKeys(expID string) []engine.Key {
	condOver := func(id string, benchNames []string) []engine.Key {
		out := make([]engine.Key, len(benchNames))
		for i, b := range benchNames {
			out[i] = engine.Key{Class: engine.ClassCond, Trace: b, ColumnID: id}
		}
		return out
	}
	indOver := func(id string, benchNames []string) []engine.Key {
		out := make([]engine.Key, len(benchNames))
		for i, b := range benchNames {
			out[i] = engine.Key{Class: engine.ClassIndirect, Trace: b, ColumnID: id}
		}
		return out
	}
	switch expID {
	case "fig5":
		return condOver("compare-cond-16384", names(workload.SPEC()))
	case "fig6":
		return condOver("compare-cond-16384", names(workload.NonSPEC()))
	case "fig7":
		return indOver("compare-ind-2048", names(workload.SPEC()))
	case "fig8":
		return indOver("compare-ind-2048", names(workload.NonSPEC()))
	case "table3":
		return indOver("compare-ind-2048", names(workload.IndirectHeavy()))
	case "fig9":
		return condOver("fig9", []string{"gcc"})
	case "fig10":
		return indOver("fig10", []string{"gcc"})
	case "headline":
		return append(condOver("headline-cond", []string{"gcc"}),
			indOver("headline-ind", []string{"gcc"})...)
	}
	if _, ok := condGrids[expID]; ok {
		return condOver(expID, ablationBenches)
	}
	if _, ok := indGrids[expID]; ok {
		return indOver(expID, names(workload.IndirectHeavy()))
	}
	return nil
}
