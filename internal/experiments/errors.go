package experiments

import "fmt"

// NotFoundError reports a result-accessor lookup — a predictor name, a
// benchmark, a sweep size — that matched nothing in the artifact.
// Callers detect it with errors.As to distinguish "this artifact has no
// such series" from measurement failures.
type NotFoundError struct {
	Kind string // what was looked up: "predictor", "benchmark", "size"
	Key  string // the key that missed
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("experiments: no %s %q in result", e.Kind, e.Key)
}

// index returns the position of want in ss, or -1. Accessor scans use
// it so lookups stop at the first match instead of walking every entry.
func index(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}
