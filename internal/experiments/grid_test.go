package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// gridSuite builds a dedicated small suite so engine counter deltas are
// not perturbed by the package's shared testSuite.
func gridSuite() *Suite {
	return NewSuite(Config{BaseRecords: 30000, ProfileRecords: 15000})
}

// sharedIndirectBenches are the benchmarks both fig7 (SPEC) and table3
// (indirect-heavy) replay: the cross-experiment dedup surface.
func sharedIndirectBenches(t *testing.T) int {
	t.Helper()
	spec := map[string]bool{}
	for _, b := range workload.SPEC() {
		spec[b.Name()] = true
	}
	shared := 0
	for _, b := range workload.IndirectHeavy() {
		if spec[b.Name()] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no benchmark is both SPEC and indirect-heavy; the dedup test exercises nothing")
	}
	return shared
}

// TestCrossExperimentCellDedup is the engine's scheduling acceptance
// test: fig7 and table3 both plan compare-ind-2048 cells for the
// benchmarks in SPEC ∩ indirect-heavy, so running both on one suite
// must replay each shared cell exactly once — and the deduped
// experiment's artifact must still be byte-identical to a run that
// computed every cell itself.
func TestCrossExperimentCellDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two real experiments twice")
	}
	shared := sharedIndirectBenches(t)
	ctx := context.Background()

	s := gridSuite()
	if _, err := s.Figure7(ctx); err != nil {
		t.Fatal(err)
	}
	after7 := s.Engine().Counters()
	if after7.Deduped != 0 {
		t.Fatalf("fig7 alone deduped %d cells; its plan should be all-unique", after7.Deduped)
	}
	rep, err := s.Table3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Engine().Counters()
	heavy := len(workload.IndirectHeavy())
	if got := c.Deduped - after7.Deduped; got != int64(shared) {
		t.Errorf("table3 after fig7 deduped %d cells, want %d (the shared benchmarks)", got, shared)
	}
	if got := c.Executed - after7.Executed; got != int64(heavy-shared) {
		t.Errorf("table3 after fig7 executed %d cells, want %d (only the unshared benchmarks)", got, heavy-shared)
	}

	// The deduped run's artifact matches an isolated suite that executed
	// every table3 cell itself.
	iso := gridSuite()
	isoRep, err := iso.Table3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text != isoRep.Text {
		t.Errorf("deduped table3 artifact differs from the isolated run\n--- deduped ---\n%s\n--- isolated ---\n%s",
			rep.Text, isoRep.Text)
	}
	if isoC := iso.Engine().Counters(); isoC.Deduped != 0 {
		t.Errorf("isolated suite deduped %d cells; reference run must compute everything", isoC.Deduped)
	}
}

// TestGridKeysShape pins the static cell enumeration the coordinator's
// pre-warming relies on: keys are canonical, classed correctly, and
// experiments whose work is not cell-shaped enumerate nothing.
func TestGridKeysShape(t *testing.T) {
	keys := GridKeys("fig7")
	if len(keys) != len(workload.SPEC()) {
		t.Fatalf("fig7 enumerates %d keys, want one per SPEC benchmark (%d)", len(keys), len(workload.SPEC()))
	}
	for _, k := range keys {
		if k.Class != engine.ClassIndirect || k.ColumnID != "compare-ind-2048" {
			t.Errorf("fig7 key %v, want indirect compare-ind-2048", k)
		}
	}
	// headline plans one conditional and one indirect column on gcc.
	hk := GridKeys("headline")
	if len(hk) != 2 || hk[0].Class != engine.ClassCond || hk[1].Class != engine.ClassIndirect {
		t.Errorf("headline keys %v, want one cond and one indirect column", hk)
	}
	// Workload summaries and pipeline models are not cell-shaped.
	for _, id := range []string{"table1", "table2", "ablation-speedup", "nonesuch"} {
		if got := GridKeys(id); got != nil {
			t.Errorf("GridKeys(%q) = %v, want nil", id, got)
		}
	}
	// Every enumerated key survives the wire round trip.
	for _, e := range Registry() {
		for _, k := range GridKeys(e.ID) {
			rt, err := engine.ParseKey(k.String())
			if err != nil || rt != k {
				t.Errorf("%s key %v: round trip gave %v, %v", e.ID, k, rt, err)
			}
		}
	}
}

// TestColumnCellResolvesGridKeys checks the cell-job contract end to
// end: every key an experiment enumerates resolves through ColumnCell
// to a buildable cell carrying the same canonical key, and unknown
// column ids fail with an error naming them.
func TestColumnCellResolvesGridKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("builds profiled cells for every enumerable experiment")
	}
	s := gridSuite()
	ctx := context.Background()
	resolved := 0
	for _, e := range Registry() {
		for _, k := range GridKeys(e.ID) {
			cell, err := s.ColumnCell(ctx, k)
			if err != nil {
				t.Fatalf("%s: ColumnCell(%v): %v", e.ID, k, err)
			}
			if cell.Key() != k {
				t.Errorf("%s: resolved cell has key %v, want %v", e.ID, cell.Key(), k)
			}
			if len(cell.Cond)+len(cell.Indirect) == 0 {
				t.Errorf("%s: resolved cell %v is empty", e.ID, k)
			}
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("no experiment enumerated any cells")
	}

	if _, err := s.ColumnCell(ctx, engine.Key{Class: engine.ClassCond, Trace: "gcc", ColumnID: "nonesuch"}); err == nil || !strings.Contains(err.Error(), `unknown conditional column "nonesuch"`) {
		t.Errorf("unknown conditional column error = %v", err)
	}
	if _, err := s.ColumnCell(ctx, engine.Key{Class: engine.ClassIndirect, Trace: "gcc", ColumnID: "nonesuch"}); err == nil || !strings.Contains(err.Error(), `unknown indirect column "nonesuch"`) {
		t.Errorf("unknown indirect column error = %v", err)
	}
}
