package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/engine"
	"repro/internal/engine/pool"
	"repro/internal/tablefmt"
	"repro/internal/vlp"
)

// ablationBenches is the subset used for ablation studies: a compiler-like
// benchmark, an interpreter, a noisy search program, and a call-heavy
// formatter — the corners of the suite's behaviour space.
var ablationBenches = []string{"gcc", "perl", "go", "groff"}

// AblationResult is a generic benchmarks-by-variants percentage table.
type AblationResult struct {
	Benchmarks []string
	Variants   []string
	// Rates[v][b] is variant v's misprediction percentage on benchmark b.
	Rates [][]float64
}

func (r *AblationResult) table() string {
	tb := tablefmt.New(append([]string{"Benchmark"}, r.Variants...)...)
	for bi, b := range r.Benchmarks {
		cells := []interface{}{b}
		for vi := range r.Variants {
			cells = append(cells, fmt.Sprintf("%.2f%%", r.Rates[vi][bi]))
		}
		tb.Row(cells...)
	}
	return tb.String()
}

// condVariantCells builds the per-benchmark column of a variants grid:
// one cell per variant, each deferring to the shared constructor.
func condVariantCells(bench string, n int,
	mk func(variant int, bench string) (bpred.CondPredictor, error)) []CondCell {
	cells := make([]CondCell, n)
	for v := range cells {
		v := v
		cells[v] = func() (bpred.CondPredictor, error) { return mk(v, bench) }
	}
	return cells
}

// runCondVariants measures conditional misprediction for one predictor
// constructor per variant, across the ablation benchmarks, as a
// declarative plan: one engine cell per benchmark (all variants fused
// into one trace pass), scheduled by the engine's pool. The id names
// the variant set for the engine's cell memoization.
func (s *Suite) runCondVariants(ctx context.Context, id string, benchNames []string, variants []string,
	mk func(variant int, bench string) (bpred.CondPredictor, error)) (*AblationResult, error) {
	res := &AblationResult{
		Benchmarks: benchNames,
		Variants:   variants,
		Rates:      newRates(len(variants), len(benchNames)),
	}
	plan := engine.NewPlan()
	for _, bench := range benchNames {
		plan.Cond(bench, id, condVariantCells(bench, len(variants), mk))
	}
	cols, err := s.eng.Execute(ctx, plan)
	if err != nil {
		return res, err
	}
	for b := range benchNames {
		for v := range variants {
			res.Rates[v][b] = cols[b][v]
		}
	}
	return res, nil
}

// AblationRotation measures the §3.3 design choice: rotating each target
// by its depth before XOR (order-preserving) versus a plain XOR fold.
func (s *Suite) AblationRotation(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-rotation")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-rotation",
		Title: "Ablation: hash rotation (order encoding, paper §3.3), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationReturns measures the §3.2 claim that storing return targets in
// the THB does not strongly matter.
func (s *Suite) AblationReturns(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-returns")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-returns",
		Title: "Ablation: return targets in the THB (paper §3.2), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationSubset profiles with only the hash functions {1,2,4,8,16,32}
// implemented (§3.1's reduced-cost implementation) versus all 32.
func (s *Suite) AblationSubset(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-subset")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-subset",
		Title: "Ablation: implemented hash-function subset (paper §3.1), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationHeuristic varies the profiling heuristic's candidate and
// iteration counts around the paper's 3-candidates/7-iterations setting.
func (s *Suite) AblationHeuristic(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-heuristic")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-heuristic",
		Title: "Ablation: profiling heuristic candidates/iterations (paper §3.5), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// HFNTResult carries the §4.3 pipelining measurements.
type HFNTResult struct {
	Benchmarks []string
	EntryBits  []uint
	// RepredictPct[j][b] is the re-prediction percentage with 2^EntryBits[j]
	// HFNT entries on benchmark b.
	RepredictPct [][]float64
}

// AblationHFNT measures how often the pipelined predictor's hash function
// number prediction misses, forcing the two-cycle re-predict path (§4.3).
func (s *Suite) AblationHFNT(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	res := &HFNTResult{Benchmarks: ablationBenches, EntryBits: []uint{6, 8, 10, 12}}
	res.RepredictPct = newRates(len(res.EntryBits), len(res.Benchmarks))
	// The measurement lives on the predictor (RepredictRate), not in the
	// replay counts, so this experiment keeps its predictors and uses
	// the non-memoized column runner: one fused pass per benchmark over
	// all four HFNT sizes.
	err := pool.ForEach(ctx, len(res.Benchmarks), func(b int) error {
		bench := res.Benchmarks[b]
		prof, err := s.Profile(bench, false, k)
		if err != nil {
			return err
		}
		hfnts := make([]*vlp.HFNT, len(res.EntryBits))
		preds := make([]bpred.CondPredictor, len(res.EntryBits))
		for j, bits := range res.EntryBits {
			inner, err := vlp.NewCond(budget, prof.Selector(), vlp.Options{})
			if err != nil {
				return err
			}
			if hfnts[j], err = vlp.NewHFNT(inner, bits); err != nil {
				return err
			}
			preds[j] = hfnts[j]
		}
		test, err := s.TestSource(bench)
		if err != nil {
			return err
		}
		if _, err := RunCondColumn(ctx, preds, test, s.Cfg.PerCell); err != nil {
			return err
		}
		for j, h := range hfnts {
			res.RepredictPct[j][b] = 100 * h.RepredictRate()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New(append([]string{"HFNT entries"}, res.Benchmarks...)...)
	for j, bits := range res.EntryBits {
		cells := []interface{}{fmt.Sprintf("2^%d", bits)}
		for b := range res.Benchmarks {
			cells = append(cells, fmt.Sprintf("%.2f%%", res.RepredictPct[j][b]))
		}
		tb.Row(cells...)
	}
	return &Report{
		ID:    "ablation-hfnt",
		Title: "Ablation: HFNT re-prediction rate (paper §4.3), conditional 16KB VLP",
		Text:  tb.String(),
		Data:  res,
	}, nil
}

// AblationDynSel compares the §3.4 hardware-selection alternative with the
// profiled predictor and the fixed length baseline.
func (s *Suite) AblationDynSel(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-dynsel")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-dynsel",
		Title: "Ablation: hardware hash-function selection (paper §3.4), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationHistStack measures the §6 future-work history stack: saving the
// path registers across calls and restoring them on returns.
func (s *Suite) AblationHistStack(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-histstack")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-histstack",
		Title: "Ablation: history stack across calls (paper §6), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationCompetitors situates the path predictors in the wider
// conditional-predictor field the paper's related work describes: bimodal,
// GAs, PAs, gshare, and a gshare+bimodal hybrid, all near the 16 KB
// budget. (The hybrid splits its budget across components and chooser, as
// McFarling's design must.)
func (s *Suite) AblationCompetitors(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-competitors")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-competitors",
		Title: "Extension: wider conditional predictor field near 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}
