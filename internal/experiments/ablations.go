package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bpred/agree"
	"repro/internal/bpred/bimodal"
	"repro/internal/bpred/bimode"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/gskew"
	"repro/internal/bpred/hybrid"
	"repro/internal/bpred/twolevel"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/tablefmt"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// ablationBenches is the subset used for ablation studies: a compiler-like
// benchmark, an interpreter, a noisy search program, and a call-heavy
// formatter — the corners of the suite's behaviour space.
var ablationBenches = []string{"gcc", "perl", "go", "groff"}

// AblationResult is a generic benchmarks-by-variants percentage table.
type AblationResult struct {
	Benchmarks []string
	Variants   []string
	// Rates[v][b] is variant v's misprediction percentage on benchmark b.
	Rates [][]float64
}

func (r *AblationResult) table() string {
	tb := tablefmt.New(append([]string{"Benchmark"}, r.Variants...)...)
	for bi, b := range r.Benchmarks {
		cells := []interface{}{b}
		for vi := range r.Variants {
			cells = append(cells, fmt.Sprintf("%.2f%%", r.Rates[vi][bi]))
		}
		tb.Row(cells...)
	}
	return tb.String()
}

// runCondVariants measures conditional misprediction for one predictor
// constructor per variant, across the ablation benchmarks: one fused
// column per benchmark (all variants in one trace pass), benchmarks in
// parallel. The id names the variant set for the suite's column cache.
func (s *Suite) runCondVariants(ctx context.Context, id string, benchNames []string, variants []string,
	mk func(variant int, bench string) (bpred.CondPredictor, error)) (*AblationResult, error) {
	res := &AblationResult{
		Benchmarks: benchNames,
		Variants:   variants,
		Rates:      newRates(len(variants), len(benchNames)),
	}
	err := sim.ForEach(ctx, len(benchNames), func(b int) error {
		bench := benchNames[b]
		cells := make([]CondCell, len(variants))
		for v := range variants {
			v := v
			cells[v] = func() (bpred.CondPredictor, error) { return mk(v, bench) }
		}
		pct, err := s.CondColumn(ctx, id, bench, cells)
		if err != nil {
			return err
		}
		for v := range variants {
			res.Rates[v][b] = pct[v]
		}
		return nil
	})
	return res, err
}

// AblationRotation measures the §3.3 design choice: rotating each target
// by its depth before XOR (order-preserving) versus a plain XOR fold.
func (s *Suite) AblationRotation(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	res, err := s.runCondVariants(ctx, "ablation-rotation", ablationBenches,
		[]string{"VLP (rotated)", "VLP (no rotation)"},
		func(v int, bench string) (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, k)
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(budget, prof.Selector(), vlp.Options{NoRotation: v == 1})
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-rotation",
		Title: "Ablation: hash rotation (order encoding, paper §3.3), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationReturns measures the §3.2 claim that storing return targets in
// the THB does not strongly matter.
func (s *Suite) AblationReturns(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	res, err := s.runCondVariants(ctx, "ablation-returns", ablationBenches,
		[]string{"returns excluded", "returns stored"},
		func(v int, bench string) (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, k)
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(budget, prof.Selector(), vlp.Options{StoreReturns: v == 1})
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-returns",
		Title: "Ablation: return targets in the THB (paper §3.2), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationSubset profiles with only the hash functions {1,2,4,8,16,32}
// implemented (§3.1's reduced-cost implementation) versus all 32.
func (s *Suite) AblationSubset(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	subset := []int{1, 2, 4, 8, 16, 32}
	res, err := s.runCondVariants(ctx, "ablation-subset", ablationBenches,
		[]string{"all 32 hash functions", "subset {1,2,4,8,16,32}"},
		func(v int, bench string) (bpred.CondPredictor, error) {
			if v == 0 {
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(budget, prof.Selector(), vlp.Options{})
			}
			src, err := s.ProfileSource(bench)
			if err != nil {
				return nil, err
			}
			prof, _, err := profile.Cond(src, profile.Config{TableBits: k, Lengths: subset})
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(budget, prof.Selector(), vlp.Options{})
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-subset",
		Title: "Ablation: implemented hash-function subset (paper §3.1), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationHeuristic varies the profiling heuristic's candidate and
// iteration counts around the paper's 3-candidates/7-iterations setting.
func (s *Suite) AblationHeuristic(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	type setting struct{ cands, iters int }
	settings := []setting{{1, 1}, {3, 3}, {3, 7}, {5, 7}}
	variants := make([]string, len(settings))
	for i, c := range settings {
		variants[i] = fmt.Sprintf("%d cand / %d iter", c.cands, c.iters)
	}
	res, err := s.runCondVariants(ctx, "ablation-heuristic", ablationBenches, variants,
		func(v int, bench string) (bpred.CondPredictor, error) {
			src, err := s.ProfileSource(bench)
			if err != nil {
				return nil, err
			}
			prof, _, err := profile.Cond(src, profile.Config{
				TableBits: k, Candidates: settings[v].cands, Iterations: settings[v].iters,
			})
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(budget, prof.Selector(), vlp.Options{})
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-heuristic",
		Title: "Ablation: profiling heuristic candidates/iterations (paper §3.5), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// HFNTResult carries the §4.3 pipelining measurements.
type HFNTResult struct {
	Benchmarks []string
	EntryBits  []uint
	// RepredictPct[j][b] is the re-prediction percentage with 2^EntryBits[j]
	// HFNT entries on benchmark b.
	RepredictPct [][]float64
}

// AblationHFNT measures how often the pipelined predictor's hash function
// number prediction misses, forcing the two-cycle re-predict path (§4.3).
func (s *Suite) AblationHFNT(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	res := &HFNTResult{Benchmarks: ablationBenches, EntryBits: []uint{6, 8, 10, 12}}
	res.RepredictPct = newRates(len(res.EntryBits), len(res.Benchmarks))
	// The measurement lives on the predictor (RepredictRate), not in the
	// replay counts, so this experiment keeps its predictors and uses
	// the non-memoized column runner: one fused pass per benchmark over
	// all four HFNT sizes.
	err := sim.ForEach(ctx, len(res.Benchmarks), func(b int) error {
		bench := res.Benchmarks[b]
		prof, err := s.Profile(bench, false, k)
		if err != nil {
			return err
		}
		hfnts := make([]*vlp.HFNT, len(res.EntryBits))
		preds := make([]bpred.CondPredictor, len(res.EntryBits))
		for j, bits := range res.EntryBits {
			inner, err := vlp.NewCond(budget, prof.Selector(), vlp.Options{})
			if err != nil {
				return err
			}
			if hfnts[j], err = vlp.NewHFNT(inner, bits); err != nil {
				return err
			}
			preds[j] = hfnts[j]
		}
		test, err := s.TestSource(bench)
		if err != nil {
			return err
		}
		if _, err := RunCondColumn(ctx, preds, test, s.Cfg.PerCell); err != nil {
			return err
		}
		for j, h := range hfnts {
			res.RepredictPct[j][b] = 100 * h.RepredictRate()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New(append([]string{"HFNT entries"}, res.Benchmarks...)...)
	for j, bits := range res.EntryBits {
		cells := []interface{}{fmt.Sprintf("2^%d", bits)}
		for b := range res.Benchmarks {
			cells = append(cells, fmt.Sprintf("%.2f%%", res.RepredictPct[j][b]))
		}
		tb.Row(cells...)
	}
	return &Report{
		ID:    "ablation-hfnt",
		Title: "Ablation: HFNT re-prediction rate (paper §4.3), conditional 16KB VLP",
		Text:  tb.String(),
		Data:  res,
	}, nil
}

// AblationDynSel compares the §3.4 hardware-selection alternative with the
// profiled predictor and the fixed length baseline.
func (s *Suite) AblationDynSel(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	fixedLen, err := s.SuiteFixedLength(all, false, k)
	if err != nil {
		return nil, err
	}
	res, err := s.runCondVariants(ctx, "ablation-dynsel", ablationBenches,
		[]string{"fixed length path", "dynamic selection (hw)", "variable length path (profiled)"},
		func(v int, bench string) (bpred.CondPredictor, error) {
			switch v {
			case 0:
				return vlp.NewCond(budget, vlp.Fixed{L: fixedLen}, vlp.Options{})
			case 1:
				return vlp.NewDynCond(budget, nil, 12, 4)
			default:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(budget, prof.Selector(), vlp.Options{})
			}
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-dynsel",
		Title: "Ablation: hardware hash-function selection (paper §3.4), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationHistStack measures the §6 future-work history stack: saving the
// path registers across calls and restoring them on returns.
func (s *Suite) AblationHistStack(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	res, err := s.runCondVariants(ctx, "ablation-histstack", ablationBenches,
		[]string{"flat history", "stack (restore)", "stack (combine 2)"},
		func(v int, bench string) (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, k)
			if err != nil {
				return nil, err
			}
			opts := vlp.Options{HistoryStack: v >= 1}
			if v == 2 {
				opts.HistoryCombine = 2
			}
			return vlp.NewCond(budget, prof.Selector(), opts)
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-histstack",
		Title: "Ablation: history stack across calls (paper §6), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// AblationCompetitors situates the path predictors in the wider
// conditional-predictor field the paper's related work describes: bimodal,
// GAs, PAs, gshare, and a gshare+bimodal hybrid, all near the 16 KB
// budget. (The hybrid splits its budget across components and chooser, as
// McFarling's design must.)
func (s *Suite) AblationCompetitors(ctx context.Context) (*Report, error) {
	const budget = 16 * 1024
	k := condK(budget)
	res, err := s.runCondVariants(ctx, "ablation-competitors", ablationBenches,
		[]string{"bimodal", "GAs", "PAs", "gshare", "agree", "bi-mode", "gskew", "hybrid", "FLP(tuned)", "VLP"},
		func(v int, bench string) (bpred.CondPredictor, error) {
			switch v {
			case 0:
				return bimodal.New(budget)
			case 1:
				return twolevel.NewGAsBudget(budget, 12)
			case 2:
				return twolevel.NewPAs(k, 10, 8)
			case 3:
				return gshare.New(budget)
			case 4:
				return agree.New(budget, 12)
			case 5:
				return bimode.New(budget)
			case 6:
				return gskew.New(budget)
			case 7:
				g, err := gshare.New(budget / 2)
				if err != nil {
					return nil, err
				}
				b, err := bimodal.New(budget / 4)
				if err != nil {
					return nil, err
				}
				return hybrid.New(g, b, 13), nil // 2^13 chooser counters = 2KB
			case 8:
				l, err := s.TunedFixedLength(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(budget, vlp.Fixed{L: l}, vlp.Options{})
			default:
				prof, err := s.Profile(bench, false, k)
				if err != nil {
					return nil, err
				}
				return vlp.NewCond(budget, prof.Selector(), vlp.Options{})
			}
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-competitors",
		Title: "Extension: wider conditional predictor field near 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}
