package experiments

import (
	"context"
	"fmt"

	"repro/internal/engine/pool"
	"repro/internal/tablefmt"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table1Row is one benchmark's workload characterisation (paper Table 1).
type Table1Row struct {
	Benchmark       string
	CondDynamic     int64
	CondStatic      int
	IndirectDynamic int64
	IndirectStatic  int
}

// Table1Result is the full benchmark summary.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces the paper's Table 1: dynamic and static counts of
// conditional and indirect branches per benchmark on the test input
// (returns excluded from the indirect counts, §5.1).
func (s *Suite) Table1(ctx context.Context) (*Report, error) {
	bs, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Rows: make([]Table1Row, len(bs))}
	err = pool.ForEach(ctx, len(bs), func(i int) error {
		src, err := s.TestSource(bs[i].Name())
		if err != nil {
			return err
		}
		sum := trace.Summarize(src)
		res.Rows[i] = Table1Row{
			Benchmark:       bs[i].Name(),
			CondDynamic:     sum.DynamicCond(),
			CondStatic:      sum.StaticCond,
			IndirectDynamic: sum.DynamicIndirect(),
			IndirectStatic:  sum.StaticIndirect,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Benchmark", "cond dynamic", "cond static", "indirect dynamic", "indirect static").
		AlignRight(1, 2, 3, 4)
	for _, r := range res.Rows {
		tb.Row(r.Benchmark, r.CondDynamic, r.CondStatic, r.IndirectDynamic, r.IndirectStatic)
	}
	return &Report{
		ID:    "table1",
		Title: "Table 1: Benchmark Summary",
		Text:  tb.String(),
		Data:  res,
	}, nil
}

// Table2Row maps one table size to the suite-wide best fixed path length.
type Table2Row struct {
	SizeBytes  int
	PathLength int
}

// Table2Result holds both halves of the paper's Table 2.
type Table2Result struct {
	Conditional []Table2Row
	Indirect    []Table2Row
}

// Table2 reproduces the paper's Table 2: for each hardware budget, the
// fixed path length with the lowest average misprediction rate over all
// benchmarks, determined on the profile inputs (§5.1).
func (s *Suite) Table2(ctx context.Context) (*Report, error) {
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}

	type job struct {
		bytes    int
		indirect bool
	}
	var jobs []job
	for _, kb := range CondSizesKB {
		jobs = append(jobs, job{kb * 1024, false})
	}
	for _, b := range IndSizesBytes {
		jobs = append(jobs, job{b, true})
	}
	lengths := make([]int, len(jobs))
	err = pool.ForEach(ctx, len(jobs), func(i int) error {
		j := jobs[i]
		k := condK(j.bytes)
		if j.indirect {
			k = indK(j.bytes)
		}
		var jerr error
		lengths[i], jerr = s.SuiteFixedLength(all, j.indirect, k)
		return jerr
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		row := Table2Row{SizeBytes: j.bytes, PathLength: lengths[i]}
		if j.indirect {
			res.Indirect = append(res.Indirect, row)
		} else {
			res.Conditional = append(res.Conditional, row)
		}
	}

	ct := tablefmt.New("Table Size (KB)", "Path Length").AlignRight(0, 1)
	for _, r := range res.Conditional {
		ct.Row(fmt.Sprintf("%d", r.SizeBytes/1024), r.PathLength)
	}
	it := tablefmt.New("Table Size (KB)", "Path Length").AlignRight(0, 1)
	for _, r := range res.Indirect {
		it.Row(fmt.Sprintf("%g", float64(r.SizeBytes)/1024), r.PathLength)
	}
	text := "Conditional Branches\n" + ct.String() + "\nIndirect Branches\n" + it.String()
	return &Report{
		ID:    "table2",
		Title: "Table 2: Path Length Used for Fixed Length Predictor",
		Text:  text,
		Data:  res,
	}, nil
}

// Table3 reproduces the paper's Table 3: indirect misprediction rates on
// the eight indirect-heavy benchmarks at the 2 KB budget, for the Chang-
// Hao-Patt path and pattern caches and the fixed/variable length path
// predictors.
func (s *Suite) Table3(ctx context.Context) (*Report, error) {
	series, err := s.indirectComparison(ctx, workload.IndirectHeavy(), 2048)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Benchmark", "path [3]", "pattern [3]", "FLP", "VLP").
		AlignRight(1, 2, 3, 4)
	for bi, b := range series.Benchmarks {
		tb.Row(b,
			fmt.Sprintf("%.2f%%", series.Rates[0][bi]),
			fmt.Sprintf("%.2f%%", series.Rates[1][bi]),
			fmt.Sprintf("%.2f%%", series.Rates[2][bi]),
			fmt.Sprintf("%.2f%%", series.Rates[3][bi]))
	}
	redPat, err := series.MeanReduction("pattern (Chang, Hao, and Patt)", "variable length path")
	if err != nil {
		return nil, err
	}
	redFLP, err := series.MeanReduction("pattern (Chang, Hao, and Patt)", "fixed length path")
	if err != nil {
		return nil, err
	}
	footer := fmt.Sprintf("\nmean misprediction reduction vs pattern cache: FLP %.1f%%, VLP %.1f%% (paper: 36.4%% / 54.3%%)\n",
		redFLP, redPat)
	return &Report{
		ID:    "table3",
		Title: "Table 3: Misprediction Rates for Indirect Branches on Selected Benchmarks (2KB)",
		Text:  tb.String() + footer,
		Data:  series,
	}, nil
}
