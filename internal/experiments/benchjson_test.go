package experiments

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func TestRunMeasuredAttachesMetrics(t *testing.T) {
	e, err := Find("headline")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunMeasured(context.Background(), testSuite())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m.WallNanos <= 0 {
		t.Errorf("WallNanos = %d, want > 0", m.WallNanos)
	}
	if m.Branches <= 0 {
		t.Errorf("Branches = %d, want > 0 (sim runs must be counted)", m.Branches)
	}
	if m.BranchesPerSec <= 0 {
		t.Errorf("BranchesPerSec = %f, want > 0", m.BranchesPerSec)
	}
	if m.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", m.Workers)
	}
}

func TestWriteBenchEmitsSchema(t *testing.T) {
	e, err := Find("ablation-ras")
	if err != nil {
		t.Fatal(err)
	}
	s := testSuite()
	rep, err := e.RunMeasured(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := rep.WriteBench(dir, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if path != obs.BenchPath(dir, "ablation-ras") {
		t.Errorf("bench path = %s", path)
	}
	got, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ablation-ras" || got.Title != rep.Title {
		t.Errorf("report identity mismatch: %+v", got)
	}
	if got.Params["base_records"] != "120000" {
		t.Errorf("base_records param = %q", got.Params["base_records"])
	}
	if got.Metrics != rep.Metrics {
		t.Errorf("metrics not preserved: %+v vs %+v", got.Metrics, rep.Metrics)
	}
	if got.Data == nil {
		t.Error("typed data dropped from bench report")
	}
}

func TestWriteBenchRequiresID(t *testing.T) {
	r := &Report{Title: "anonymous"}
	if _, err := r.WriteBench(t.TempDir(), Config{}); err == nil {
		t.Error("report without ID accepted")
	}
}
