package experiments

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/runx"
)

// This file is the shared surface between the two execution paths: the
// in-process suite loop (cmd/paperrepro) and the distributed sweep
// (internal/dist behind cmd/vlpsweep). Both enumerate the same entries
// through Select and land the same artifact bytes through
// RenderText/WriteText, which is what makes the dist smoke's
// byte-identity diff meaningful.

// Select resolves a comma-separated experiment list ("headline,fig9")
// to registry entries, preserving order. An empty list selects the full
// registry.
func Select(list string) ([]Entry, error) {
	if strings.TrimSpace(list) == "" {
		return Registry(), nil
	}
	var entries []Entry
	for _, id := range strings.Split(list, ",") {
		e, err := Find(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// RenderText is the canonical encoding of a rendered experiment
// artifact (<out>/<id>.txt): title, blank line, body.
func RenderText(title, text string) []byte {
	return []byte(title + "\n\n" + text)
}

// WriteText writes the rendered artifact to <dir>/<id>.txt — through
// runx.AtomicWriteFile, so a crash mid-write can never leave a torn
// artifact that a resumed run (or the byte-identity smoke) would then
// trust — and returns that path.
func WriteText(dir, id, title, text string) (string, error) {
	if id == "" {
		return "", fmt.Errorf("experiments: artifact has no ID to name its file")
	}
	path := filepath.Join(dir, id+".txt")
	return path, runx.AtomicWriteFile(path, RenderText(title, text), 0o644)
}

// WriteBenchBlob validates a serialized bench report (as shipped in a
// JobResponse) and writes it to the canonical bench_<id>.json path
// under dir in the standard report encoding. The blob is decoded rather
// than copied verbatim so a worker cannot land an invalid or misnamed
// report in the results directory.
func WriteBenchBlob(dir, id string, blob []byte) (string, error) {
	rep, err := obs.DecodeReport(blob)
	if err != nil {
		return "", fmt.Errorf("experiments: bench blob for %s: %w", id, err)
	}
	if rep.Name != id {
		return "", fmt.Errorf("experiments: bench blob names %q, want %q", rep.Name, id)
	}
	return rep.WriteBench(dir)
}
