package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred/ras"
	"repro/internal/engine/pool"
	"repro/internal/tablefmt"
	"repro/internal/workload"
)

// AblationIndField pits the full indirect predictor field against each
// other at the 2 KB budget on the indirect-heavy benchmarks: BTB,
// pattern/path target caches, the Driesen-Hölzle-style cascaded predictor
// ("the best competing predictor" family the paper references), and the
// fixed/variable length path predictors.
func (s *Suite) AblationIndField(ctx context.Context) (*Report, error) {
	res, err := s.runIndGrid(ctx, "ablation-indfield")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-indfield",
		Title: "Extension: full indirect predictor field at 2KB (indirect-heavy benchmarks)",
		Text:  res.table(),
		Data:  res,
	}, nil
}

// RASResult carries per-benchmark return statistics.
type RASResult struct {
	Benchmarks []string
	Depths     []int
	// HitPct[d][b] is the return hit percentage at Depths[d] on
	// benchmark b.
	HitPct  [][]float64
	Returns []int64
}

// AblationRAS quantifies the premise behind the paper's exclusion of
// returns from the indirect counts (§5.1): a return address stack predicts
// them, nearly perfectly once deep enough for the program's call nesting.
func (s *Suite) AblationRAS(ctx context.Context) (*Report, error) {
	bs, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &RASResult{
		Benchmarks: names(bs),
		Depths:     []int{1, 4, 16, 64},
		Returns:    make([]int64, len(bs)),
	}
	res.HitPct = newRates(len(res.Depths), len(bs))
	type job struct{ d, b int }
	var jobs []job
	for d := range res.Depths {
		for b := range bs {
			jobs = append(jobs, job{d, b})
		}
	}
	err = pool.ForEach(ctx, len(jobs), func(i int) error {
		j := jobs[i]
		src, err := s.TestSource(bs[j.b].Name())
		if err != nil {
			return err
		}
		st, err := ras.Run(src, res.Depths[j.d])
		if err != nil {
			return err
		}
		res.HitPct[j.d][j.b] = 100 * st.HitRate()
		res.Returns[j.b] = st.Returns
		return nil
	})
	if err != nil {
		return nil, err
	}
	header := []string{"Benchmark", "returns"}
	for _, d := range res.Depths {
		header = append(header, fmt.Sprintf("depth %d", d))
	}
	tb := tablefmt.New(header...)
	for b, name := range res.Benchmarks {
		cells := []interface{}{name, res.Returns[b]}
		for d := range res.Depths {
			cells = append(cells, fmt.Sprintf("%.2f%%", res.HitPct[d][b]))
		}
		tb.Row(cells...)
	}
	return &Report{
		ID:    "ablation-ras",
		Title: "Extension: return address stack hit rates (paper §5.1's exclusion of returns)",
		Text:  tb.String(),
		Data:  res,
	}, nil
}
