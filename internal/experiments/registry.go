package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/obs"
)

// Entry describes one runnable experiment.
type Entry struct {
	ID    string
	Title string
	Run   func(*Suite) (*Report, error)
}

// RunMeasured runs the experiment bracketed by an observability span
// and attaches the measured cost — wall time, dynamic branches
// simulated across every predictor run inside it, throughput,
// allocation, GC cycles — to the report. This is how cmd/paperrepro
// and the root benchmarks execute entries; the raw Run field remains
// for callers that want the data alone.
func (e Entry) RunMeasured(s *Suite) (*Report, error) {
	span := obs.StartSpan()
	// Experiments fan their (predictor, benchmark) jobs out through
	// sim.ForEach; GOMAXPROCS is the pool's ceiling.
	span.SetWorkers(runtime.GOMAXPROCS(0))
	rep, err := e.Run(s)
	if err != nil {
		return nil, err
	}
	rep.Metrics = span.End()
	return rep, nil
}

// Registry lists every experiment in the order the paper presents them,
// followed by the repository's ablation studies. cmd/paperrepro iterates
// it to regenerate the full evaluation.
func Registry() []Entry {
	return []Entry{
		{"table1", "Benchmark summary (paper Table 1)", (*Suite).Table1},
		{"table2", "Fixed path length per table size (paper Table 2)", (*Suite).Table2},
		{"fig5", "Conditional, 16KB, SPEC (paper Figure 5)", (*Suite).Figure5},
		{"fig6", "Conditional, 16KB, non-SPEC (paper Figure 6)", (*Suite).Figure6},
		{"fig7", "Indirect, 2KB, SPEC (paper Figure 7)", (*Suite).Figure7},
		{"fig8", "Indirect, 2KB, non-SPEC (paper Figure 8)", (*Suite).Figure8},
		{"table3", "Indirect rates on indirect-heavy benchmarks (paper Table 3)", (*Suite).Table3},
		{"fig9", "gcc conditional vs size (paper Figure 9)", (*Suite).Figure9},
		{"fig10", "gcc indirect vs size (paper Figure 10)", (*Suite).Figure10},
		{"headline", "Abstract's gcc numbers", (*Suite).Headline},
		{"ablation-rotation", "Hash rotation ablation (paper §3.3)", (*Suite).AblationRotation},
		{"ablation-returns", "Returns-in-THB ablation (paper §3.2)", (*Suite).AblationReturns},
		{"ablation-subset", "Hash-function subset ablation (paper §3.1)", (*Suite).AblationSubset},
		{"ablation-heuristic", "Candidate/iteration count ablation (paper §3.5)", (*Suite).AblationHeuristic},
		{"ablation-hfnt", "HFNT re-prediction rates (paper §4.3)", (*Suite).AblationHFNT},
		{"ablation-dynsel", "Hardware dynamic selection (paper §3.4)", (*Suite).AblationDynSel},
		{"ablation-histstack", "History stack extension (paper §6)", (*Suite).AblationHistStack},
		{"ablation-competitors", "Wider conditional predictor field", (*Suite).AblationCompetitors},
		{"ablation-indfield", "Full indirect predictor field", (*Suite).AblationIndField},
		{"ablation-adaptivity", "History-length adaptivity spectrum (paper §2)", (*Suite).AblationAdaptivity},
		{"ablation-ras", "Return address stack hit rates (paper §5.1)", (*Suite).AblationRAS},
		{"ablation-isabits", "ISA bits for the hash number (paper §4.2)", (*Suite).AblationISABits},
		{"ablation-speedup", "Front-end cycle impact (paper §1)", (*Suite).AblationSpeedup},
		{"ablation-pathinfo", "Path information needed per branch (paper §5.3)", (*Suite).AblationPathInfo},
		{"ablation-interference", "Misprediction breakdown: cold/interference/intrinsic (paper §5.3)", (*Suite).AblationInterference},
		{"ablation-stability", "Cross-input stability of the headline comparison", (*Suite).AblationStability},
	}
}

// Find returns the registry entry with the given ID.
func Find(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
