package experiments

import (
	"context"
	"fmt"

	"repro/internal/engine/pool"
	"repro/internal/obs"
	"repro/internal/runx"
)

// Entry describes one runnable experiment. Entries are the unit every
// execution surface shares — cmd/paperrepro's suite loop, the root
// benchmarks, and the /v1/jobs sweep worker all run registry entries —
// and since the experiments lay their predictor grids out as fused
// columns (column.go), any two surfaces running the same entry at the
// same scale replay the same kernel and render identical bytes.
type Entry struct {
	ID    string
	Title string
	// Run regenerates the experiment. The receiver-first signature
	// lets the registry list method expressions directly; the context
	// carries the per-experiment deadline and cancellation.
	Run func(*Suite, context.Context) (*Report, error)
}

// RunMeasured runs the experiment bracketed by an observability span
// and attaches the measured cost — wall time, dynamic branches
// simulated across every predictor run inside it, throughput,
// allocation, GC cycles — to the report. This is how cmd/paperrepro
// and the root benchmarks execute entries; the raw Run field remains
// for callers that want the data alone.
//
// RunMeasured is also the experiment-level fault boundary: the body
// runs under recover, so a panicking experiment comes back as a
// structured *runx.PanicError instead of tearing down the sweep, and a
// canceled or expired context surfaces as that context's error even if
// the body swallowed it.
func (e Entry) RunMeasured(ctx context.Context, s *Suite) (*Report, error) {
	span := obs.StartSpan()
	// Experiments fan their (trace, column) cells out through the
	// engine's pool; pool.Cap is the process-wide ceiling.
	span.SetWorkers(pool.Cap())
	var rep *Report
	err := runx.Safe(func() error {
		var err error
		rep, err = e.Run(s, ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep.Metrics = span.End()
	return rep, nil
}

// Registry lists every experiment in the order the paper presents them,
// followed by the repository's ablation studies. cmd/paperrepro iterates
// it to regenerate the full evaluation.
func Registry() []Entry {
	return []Entry{
		{"table1", "Benchmark summary (paper Table 1)", (*Suite).Table1},
		{"table2", "Fixed path length per table size (paper Table 2)", (*Suite).Table2},
		{"fig5", "Conditional, 16KB, SPEC (paper Figure 5)", (*Suite).Figure5},
		{"fig6", "Conditional, 16KB, non-SPEC (paper Figure 6)", (*Suite).Figure6},
		{"fig7", "Indirect, 2KB, SPEC (paper Figure 7)", (*Suite).Figure7},
		{"fig8", "Indirect, 2KB, non-SPEC (paper Figure 8)", (*Suite).Figure8},
		{"table3", "Indirect rates on indirect-heavy benchmarks (paper Table 3)", (*Suite).Table3},
		{"fig9", "gcc conditional vs size (paper Figure 9)", (*Suite).Figure9},
		{"fig10", "gcc indirect vs size (paper Figure 10)", (*Suite).Figure10},
		{"headline", "Abstract's gcc numbers", (*Suite).Headline},
		{"ablation-rotation", "Hash rotation ablation (paper §3.3)", (*Suite).AblationRotation},
		{"ablation-returns", "Returns-in-THB ablation (paper §3.2)", (*Suite).AblationReturns},
		{"ablation-subset", "Hash-function subset ablation (paper §3.1)", (*Suite).AblationSubset},
		{"ablation-heuristic", "Candidate/iteration count ablation (paper §3.5)", (*Suite).AblationHeuristic},
		{"ablation-hfnt", "HFNT re-prediction rates (paper §4.3)", (*Suite).AblationHFNT},
		{"ablation-dynsel", "Hardware dynamic selection (paper §3.4)", (*Suite).AblationDynSel},
		{"ablation-histstack", "History stack extension (paper §6)", (*Suite).AblationHistStack},
		{"ablation-competitors", "Wider conditional predictor field", (*Suite).AblationCompetitors},
		{"ablation-indfield", "Full indirect predictor field", (*Suite).AblationIndField},
		{"ablation-adaptivity", "History-length adaptivity spectrum (paper §2)", (*Suite).AblationAdaptivity},
		{"ablation-ras", "Return address stack hit rates (paper §5.1)", (*Suite).AblationRAS},
		{"ablation-isabits", "ISA bits for the hash number (paper §4.2)", (*Suite).AblationISABits},
		{"ablation-speedup", "Front-end cycle impact (paper §1)", (*Suite).AblationSpeedup},
		{"ablation-pathinfo", "Path information needed per branch (paper §5.3)", (*Suite).AblationPathInfo},
		{"ablation-interference", "Misprediction breakdown: cold/interference/intrinsic (paper §5.3)", (*Suite).AblationInterference},
		{"ablation-stability", "Cross-input stability of the headline comparison", (*Suite).AblationStability},
	}
}

// FaultRegistry lists synthetic fault-injection entries that exercise
// the execution layer's failure paths end to end: a panicking
// experiment body, a plain error, and a body that blocks until its
// deadline. They are addressable through Find (so
// `paperrepro -exp headline,selftest-panic` can demonstrate panic
// isolation) but excluded from Registry, so default suite runs never
// execute them.
func FaultRegistry() []Entry {
	return []Entry{
		{"selftest-panic", "Fault injection: panics mid-experiment",
			func(*Suite, context.Context) (*Report, error) {
				panic("selftest-panic: injected experiment panic")
			}},
		{"selftest-fail", "Fault injection: returns an error",
			func(*Suite, context.Context) (*Report, error) {
				return nil, fmt.Errorf("selftest-fail: injected experiment error")
			}},
		{"selftest-hang", "Fault injection: blocks until the context expires",
			func(_ *Suite, ctx context.Context) (*Report, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			}},
	}
}

// Find returns the entry with the given ID, searching the registry and
// then the fault-injection entries.
func Find(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range FaultRegistry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
