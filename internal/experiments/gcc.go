package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/sim"
	"repro/internal/tablefmt"
	"repro/internal/textplot"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// SweepResult is a misprediction-rate-versus-size dataset (Figures 9-10).
type SweepResult struct {
	Benchmark  string
	SizesBytes []int
	Predictors []string
	// Rates[p][s] is predictor p's misprediction percentage at size s.
	Rates [][]float64
}

// Rate returns the percentage for a (predictor, size) pair.
func (r *SweepResult) Rate(predictor string, sizeBytes int) (float64, error) {
	pi, si := -1, -1
	for i, p := range r.Predictors {
		if p == predictor {
			pi = i
		}
	}
	for i, s := range r.SizesBytes {
		if s == sizeBytes {
			si = i
		}
	}
	if pi < 0 || si < 0 {
		return 0, fmt.Errorf("experiments: no rate for (%s, %d bytes)", predictor, sizeBytes)
	}
	return r.Rates[pi][si], nil
}

func (r *SweepResult) chart(title string) string {
	xs := make([]float64, len(r.SizesBytes))
	for i, b := range r.SizesBytes {
		xs[i] = float64(b) / 1024
	}
	series := make([]textplot.Series, len(r.Predictors))
	for i, p := range r.Predictors {
		series[i] = textplot.Series{Name: p, Values: r.Rates[i]}
	}
	c := &textplot.LineChart{
		Title: title, XLabel: "Predictor Size (K bytes)", X: xs, LogX: true, Series: series,
	}
	tb := tablefmt.New(append([]string{"Predictor"}, kbLabels(r.SizesBytes)...)...)
	for i, p := range r.Predictors {
		cells := []interface{}{p}
		for _, v := range r.Rates[i] {
			cells = append(cells, fmt.Sprintf("%.2f%%", v))
		}
		tb.Row(cells...)
	}
	return c.String() + "\n" + tb.String()
}

func kbLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%gKB", float64(s)/1024)
	}
	return out
}

// Figure9 reproduces the paper's Figure 9: gcc conditional branch
// misprediction versus predictor size (1 KB to 256 KB) for gshare, the
// fixed length path predictor (suite-wide length), the per-benchmark
// tuned fixed length path predictor, and the variable length path
// predictor.
func (s *Suite) Figure9(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Benchmark:  bench,
		Predictors: []string{"gshare", "fixed length path", "fixed length path (tuned)", "variable length path"},
	}
	for _, kb := range CondSizesKB {
		res.SizesBytes = append(res.SizesBytes, kb*1024)
	}
	res.Rates = newRates(len(res.Predictors), len(res.SizesBytes))

	// Warm the per-size profiling artifacts in parallel, then replay the
	// whole grid — every (size, predictor) cell — as one fused column
	// over gcc's test trace. The many fixed-length cells at each size
	// share one path history inside the kernel, which is where the
	// sweep's speedup comes from.
	type sizing struct {
		suiteLen, tunedLen int
		sel                vlp.Selector
	}
	sizings := make([]sizing, len(res.SizesBytes))
	err = sim.ForEach(ctx, len(res.SizesBytes), func(i int) error {
		k := condK(res.SizesBytes[i])
		var err error
		if sizings[i].suiteLen, err = s.SuiteFixedLength(all, false, k); err != nil {
			return err
		}
		if sizings[i].tunedLen, err = s.TunedFixedLength(bench, false, k); err != nil {
			return err
		}
		prof, err := s.Profile(bench, false, k)
		if err != nil {
			return err
		}
		sizings[i].sel = prof.Selector()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cells []CondCell
	for i := range res.SizesBytes {
		budget, sz := res.SizesBytes[i], sizings[i]
		cells = append(cells,
			func() (bpred.CondPredictor, error) { return gshare.New(budget) },
			func() (bpred.CondPredictor, error) {
				return vlp.NewCond(budget, vlp.Fixed{L: sz.suiteLen}, vlp.Options{})
			},
			func() (bpred.CondPredictor, error) {
				return vlp.NewCond(budget, vlp.Fixed{L: sz.tunedLen}, vlp.Options{})
			},
			func() (bpred.CondPredictor, error) { return vlp.NewCond(budget, sz.sel, vlp.Options{}) },
		)
	}
	pct, err := s.CondColumn(ctx, "fig9", bench, cells)
	if err != nil {
		return nil, err
	}
	for i := range res.SizesBytes {
		for p := range res.Predictors {
			res.Rates[p][i] = pct[i*len(res.Predictors)+p]
		}
	}
	return &Report{
		ID:    "fig9",
		Title: "Figure 9: Misprediction Rates for Conditional Branches in Gcc",
		Text:  res.chart("gcc conditional vs size"),
		Data:  res,
	}, nil
}

// Figure10 reproduces the paper's Figure 10: gcc indirect branch
// misprediction versus predictor size (0.5 KB to 32 KB) for the Chang,
// Hao and Patt path and pattern caches and the fixed, tuned-fixed, and
// variable length path predictors.
func (s *Suite) Figure10(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Benchmark: bench,
		Predictors: []string{"path (Chang, Hao, and Patt)", "pattern (Chang, Hao, and Patt)",
			"fixed length path", "fixed length path (tuned)", "variable length path"},
		SizesBytes: append([]int(nil), IndSizesBytes...),
	}
	res.Rates = newRates(len(res.Predictors), len(res.SizesBytes))

	// Same shape as Figure9: warm the per-size artifacts in parallel,
	// then replay the whole grid as one fused indirect column.
	type sizing struct {
		suiteLen, tunedLen int
		sel                vlp.Selector
	}
	sizings := make([]sizing, len(res.SizesBytes))
	err = sim.ForEach(ctx, len(res.SizesBytes), func(i int) error {
		k := indK(res.SizesBytes[i])
		var err error
		if sizings[i].suiteLen, err = s.SuiteFixedLength(all, true, k); err != nil {
			return err
		}
		if sizings[i].tunedLen, err = s.TunedFixedLength(bench, true, k); err != nil {
			return err
		}
		prof, err := s.Profile(bench, true, k)
		if err != nil {
			return err
		}
		sizings[i].sel = prof.Selector()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cells []IndirectCell
	for i := range res.SizesBytes {
		budget, sz := res.SizesBytes[i], sizings[i]
		cells = append(cells,
			func() (bpred.IndirectPredictor, error) { return targetcache.NewPathBudget(budget) },
			func() (bpred.IndirectPredictor, error) { return targetcache.NewPatternBudget(budget) },
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budget, vlp.Fixed{L: sz.suiteLen}, vlp.Options{})
			},
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budget, vlp.Fixed{L: sz.tunedLen}, vlp.Options{})
			},
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budget, sz.sel, vlp.Options{})
			},
		)
	}
	pct, err := s.IndirectColumn(ctx, "fig10", bench, cells)
	if err != nil {
		return nil, err
	}
	for i := range res.SizesBytes {
		for p := range res.Predictors {
			res.Rates[p][i] = pct[i*len(res.Predictors)+p]
		}
	}
	return &Report{
		ID:    "fig10",
		Title: "Figure 10: Misprediction Rates for Indirect Branches in Gcc",
		Text:  res.chart("gcc indirect vs size"),
		Data:  res,
	}, nil
}

// HeadlineResult carries the paper's abstract numbers: gcc conditional at
// a 4 KB budget (VLP vs gshare) and gcc indirect at 512 bytes (VLP vs the
// best competing predictor).
type HeadlineResult struct {
	CondGshare, CondVLP  float64 // percent, 4 KB
	IndBestCompeting     float64 // percent, 512 B (min of path/pattern)
	IndBestCompetingName string
	IndVLP               float64
}

// Headline reproduces the abstract's gcc numbers (paper: 4.3% vs 8.8%
// conditional at 4 KB; 27.7% vs 44.2% indirect at 512 bytes).
func (s *Suite) Headline(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	res := &HeadlineResult{}

	prof, err := s.Profile(bench, false, condK(4*1024))
	if err != nil {
		return nil, err
	}
	cond, err := s.CondColumn(ctx, "headline-cond", bench, []CondCell{
		func() (bpred.CondPredictor, error) { return gshare.New(4 * 1024) },
		func() (bpred.CondPredictor, error) { return vlp.NewCond(4*1024, prof.Selector(), vlp.Options{}) },
	})
	if err != nil {
		return nil, err
	}
	res.CondGshare, res.CondVLP = cond[0], cond[1]

	iprof, err := s.Profile(bench, true, indK(512))
	if err != nil {
		return nil, err
	}
	ind, err := s.IndirectColumn(ctx, "headline-ind", bench, []IndirectCell{
		func() (bpred.IndirectPredictor, error) { return targetcache.NewPathBudget(512) },
		func() (bpred.IndirectPredictor, error) { return targetcache.NewPatternBudget(512) },
		func() (bpred.IndirectPredictor, error) {
			return vlp.NewIndirect(512, iprof.Selector(), vlp.Options{})
		},
	})
	if err != nil {
		return nil, err
	}
	res.IndBestCompeting, res.IndBestCompetingName = ind[0], "path"
	if ind[1] < ind[0] {
		res.IndBestCompeting, res.IndBestCompetingName = ind[1], "pattern"
	}
	res.IndVLP = ind[2]

	text := fmt.Sprintf(
		"gcc conditional @ 4KB:  VLP %.2f%%  vs  gshare %.2f%%   (paper: 4.3%% vs 8.8%%)\n"+
			"gcc indirect    @ 512B: VLP %.2f%%  vs  best competing (%s) %.2f%%   (paper: 27.7%% vs 44.2%%)\n",
		res.CondVLP, res.CondGshare, res.IndVLP, res.IndBestCompetingName, res.IndBestCompeting)
	return &Report{
		ID:    "headline",
		Title: "Headline: the abstract's gcc numbers",
		Text:  text,
		Data:  res,
	}, nil
}
