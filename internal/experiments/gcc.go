package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/sim"
	"repro/internal/tablefmt"
	"repro/internal/textplot"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// SweepResult is a misprediction-rate-versus-size dataset (Figures 9-10).
type SweepResult struct {
	Benchmark  string
	SizesBytes []int
	Predictors []string
	// Rates[p][s] is predictor p's misprediction percentage at size s.
	Rates [][]float64
}

// Rate returns the percentage for a (predictor, size) pair.
func (r *SweepResult) Rate(predictor string, sizeBytes int) (float64, error) {
	pi, si := -1, -1
	for i, p := range r.Predictors {
		if p == predictor {
			pi = i
		}
	}
	for i, s := range r.SizesBytes {
		if s == sizeBytes {
			si = i
		}
	}
	if pi < 0 || si < 0 {
		return 0, fmt.Errorf("experiments: no rate for (%s, %d bytes)", predictor, sizeBytes)
	}
	return r.Rates[pi][si], nil
}

func (r *SweepResult) chart(title string) string {
	xs := make([]float64, len(r.SizesBytes))
	for i, b := range r.SizesBytes {
		xs[i] = float64(b) / 1024
	}
	series := make([]textplot.Series, len(r.Predictors))
	for i, p := range r.Predictors {
		series[i] = textplot.Series{Name: p, Values: r.Rates[i]}
	}
	c := &textplot.LineChart{
		Title: title, XLabel: "Predictor Size (K bytes)", X: xs, LogX: true, Series: series,
	}
	tb := tablefmt.New(append([]string{"Predictor"}, kbLabels(r.SizesBytes)...)...)
	for i, p := range r.Predictors {
		cells := []interface{}{p}
		for _, v := range r.Rates[i] {
			cells = append(cells, fmt.Sprintf("%.2f%%", v))
		}
		tb.Row(cells...)
	}
	return c.String() + "\n" + tb.String()
}

func kbLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%gKB", float64(s)/1024)
	}
	return out
}

// Figure9 reproduces the paper's Figure 9: gcc conditional branch
// misprediction versus predictor size (1 KB to 256 KB) for gshare, the
// fixed length path predictor (suite-wide length), the per-benchmark
// tuned fixed length path predictor, and the variable length path
// predictor.
func (s *Suite) Figure9(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Benchmark:  bench,
		Predictors: []string{"gshare", "fixed length path", "fixed length path (tuned)", "variable length path"},
	}
	for _, kb := range CondSizesKB {
		res.SizesBytes = append(res.SizesBytes, kb*1024)
	}
	res.Rates = newRates(len(res.Predictors), len(res.SizesBytes))

	err = sim.ForEach(ctx, len(res.SizesBytes), func(i int) error {
		budget := res.SizesBytes[i]
		k := condK(budget)
		test, err := s.TestSource(bench)
		if err != nil {
			return err
		}
		g, err := gshare.New(budget)
		if err != nil {
			return err
		}
		if res.Rates[0][i], err = condPercent(ctx, g, test); err != nil {
			return err
		}

		suiteLen, err := s.SuiteFixedLength(all, false, k)
		if err != nil {
			return err
		}
		flp, err := vlp.NewCond(budget, vlp.Fixed{L: suiteLen}, vlp.Options{})
		if err != nil {
			return err
		}
		if res.Rates[1][i], err = condPercent(ctx, flp, test); err != nil {
			return err
		}

		tunedLen, err := s.TunedFixedLength(bench, false, k)
		if err != nil {
			return err
		}
		tuned, err := vlp.NewCond(budget, vlp.Fixed{L: tunedLen}, vlp.Options{})
		if err != nil {
			return err
		}
		if res.Rates[2][i], err = condPercent(ctx, tuned, test); err != nil {
			return err
		}

		prof, err := s.Profile(bench, false, k)
		if err != nil {
			return err
		}
		vp, err := vlp.NewCond(budget, prof.Selector(), vlp.Options{})
		if err != nil {
			return err
		}
		res.Rates[3][i], err = condPercent(ctx, vp, test)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig9",
		Title: "Figure 9: Misprediction Rates for Conditional Branches in Gcc",
		Text:  res.chart("gcc conditional vs size"),
		Data:  res,
	}, nil
}

// Figure10 reproduces the paper's Figure 10: gcc indirect branch
// misprediction versus predictor size (0.5 KB to 32 KB) for the Chang,
// Hao and Patt path and pattern caches and the fixed, tuned-fixed, and
// variable length path predictors.
func (s *Suite) Figure10(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Benchmark: bench,
		Predictors: []string{"path (Chang, Hao, and Patt)", "pattern (Chang, Hao, and Patt)",
			"fixed length path", "fixed length path (tuned)", "variable length path"},
		SizesBytes: append([]int(nil), IndSizesBytes...),
	}
	res.Rates = newRates(len(res.Predictors), len(res.SizesBytes))

	err = sim.ForEach(ctx, len(res.SizesBytes), func(i int) error {
		budget := res.SizesBytes[i]
		k := indK(budget)
		test, err := s.TestSource(bench)
		if err != nil {
			return err
		}
		path, err := targetcache.NewPathBudget(budget)
		if err != nil {
			return err
		}
		if res.Rates[0][i], err = indirectPercent(ctx, path, test); err != nil {
			return err
		}

		pattern, err := targetcache.NewPatternBudget(budget)
		if err != nil {
			return err
		}
		if res.Rates[1][i], err = indirectPercent(ctx, pattern, test); err != nil {
			return err
		}

		suiteLen, err := s.SuiteFixedLength(all, true, k)
		if err != nil {
			return err
		}
		flp, err := vlp.NewIndirect(budget, vlp.Fixed{L: suiteLen}, vlp.Options{})
		if err != nil {
			return err
		}
		if res.Rates[2][i], err = indirectPercent(ctx, flp, test); err != nil {
			return err
		}

		tunedLen, err := s.TunedFixedLength(bench, true, k)
		if err != nil {
			return err
		}
		tuned, err := vlp.NewIndirect(budget, vlp.Fixed{L: tunedLen}, vlp.Options{})
		if err != nil {
			return err
		}
		if res.Rates[3][i], err = indirectPercent(ctx, tuned, test); err != nil {
			return err
		}

		prof, err := s.Profile(bench, true, k)
		if err != nil {
			return err
		}
		vp, err := vlp.NewIndirect(budget, prof.Selector(), vlp.Options{})
		if err != nil {
			return err
		}
		res.Rates[4][i], err = indirectPercent(ctx, vp, test)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig10",
		Title: "Figure 10: Misprediction Rates for Indirect Branches in Gcc",
		Text:  res.chart("gcc indirect vs size"),
		Data:  res,
	}, nil
}

// HeadlineResult carries the paper's abstract numbers: gcc conditional at
// a 4 KB budget (VLP vs gshare) and gcc indirect at 512 bytes (VLP vs the
// best competing predictor).
type HeadlineResult struct {
	CondGshare, CondVLP  float64 // percent, 4 KB
	IndBestCompeting     float64 // percent, 512 B (min of path/pattern)
	IndBestCompetingName string
	IndVLP               float64
}

// Headline reproduces the abstract's gcc numbers (paper: 4.3% vs 8.8%
// conditional at 4 KB; 27.7% vs 44.2% indirect at 512 bytes).
func (s *Suite) Headline(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	res := &HeadlineResult{}

	test, err := s.TestSource(bench)
	if err != nil {
		return nil, err
	}
	g, err := gshare.New(4 * 1024)
	if err != nil {
		return nil, err
	}
	if res.CondGshare, err = condPercent(ctx, g, test); err != nil {
		return nil, err
	}
	prof, err := s.Profile(bench, false, condK(4*1024))
	if err != nil {
		return nil, err
	}
	vp, err := vlp.NewCond(4*1024, prof.Selector(), vlp.Options{})
	if err != nil {
		return nil, err
	}
	if res.CondVLP, err = condPercent(ctx, vp, test); err != nil {
		return nil, err
	}

	path, err := targetcache.NewPathBudget(512)
	if err != nil {
		return nil, err
	}
	pathRate, err := indirectPercent(ctx, path, test)
	if err != nil {
		return nil, err
	}
	pattern, err := targetcache.NewPatternBudget(512)
	if err != nil {
		return nil, err
	}
	patternRate, err := indirectPercent(ctx, pattern, test)
	if err != nil {
		return nil, err
	}
	res.IndBestCompeting, res.IndBestCompetingName = pathRate, "path"
	if patternRate < pathRate {
		res.IndBestCompeting, res.IndBestCompetingName = patternRate, "pattern"
	}
	iprof, err := s.Profile(bench, true, indK(512))
	if err != nil {
		return nil, err
	}
	ivp, err := vlp.NewIndirect(512, iprof.Selector(), vlp.Options{})
	if err != nil {
		return nil, err
	}
	if res.IndVLP, err = indirectPercent(ctx, ivp, test); err != nil {
		return nil, err
	}

	text := fmt.Sprintf(
		"gcc conditional @ 4KB:  VLP %.2f%%  vs  gshare %.2f%%   (paper: 4.3%% vs 8.8%%)\n"+
			"gcc indirect    @ 512B: VLP %.2f%%  vs  best competing (%s) %.2f%%   (paper: 27.7%% vs 44.2%%)\n",
		res.CondVLP, res.CondGshare, res.IndVLP, res.IndBestCompetingName, res.IndBestCompeting)
	return &Report{
		ID:    "headline",
		Title: "Headline: the abstract's gcc numbers",
		Text:  text,
		Data:  res,
	}, nil
}
