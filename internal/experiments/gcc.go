package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/engine"
	"repro/internal/engine/pool"
	"repro/internal/tablefmt"
	"repro/internal/textplot"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// SweepResult is a misprediction-rate-versus-size dataset (Figures 9-10).
type SweepResult struct {
	Benchmark  string
	SizesBytes []int
	Predictors []string
	// Rates[p][s] is predictor p's misprediction percentage at size s.
	Rates [][]float64
}

// Rate returns the percentage for a (predictor, size) pair.
func (r *SweepResult) Rate(predictor string, sizeBytes int) (float64, error) {
	pi := index(r.Predictors, predictor)
	if pi < 0 {
		return 0, &NotFoundError{Kind: "predictor", Key: predictor}
	}
	si := -1
	for i, s := range r.SizesBytes {
		if s == sizeBytes {
			si = i
			break
		}
	}
	if si < 0 {
		return 0, &NotFoundError{Kind: "size", Key: fmt.Sprintf("%d bytes", sizeBytes)}
	}
	return r.Rates[pi][si], nil
}

func (r *SweepResult) chart(title string) string {
	xs := make([]float64, len(r.SizesBytes))
	for i, b := range r.SizesBytes {
		xs[i] = float64(b) / 1024
	}
	series := make([]textplot.Series, len(r.Predictors))
	for i, p := range r.Predictors {
		series[i] = textplot.Series{Name: p, Values: r.Rates[i]}
	}
	c := &textplot.LineChart{
		Title: title, XLabel: "Predictor Size (K bytes)", X: xs, LogX: true, Series: series,
	}
	tb := tablefmt.New(append([]string{"Predictor"}, kbLabels(r.SizesBytes)...)...)
	for i, p := range r.Predictors {
		cells := []interface{}{p}
		for _, v := range r.Rates[i] {
			cells = append(cells, fmt.Sprintf("%.2f%%", v))
		}
		tb.Row(cells...)
	}
	return c.String() + "\n" + tb.String()
}

func kbLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%gKB", float64(s)/1024)
	}
	return out
}

// figure9Cells builds Figure 9's column: the whole (size, predictor)
// grid — gshare, suite fixed length, tuned fixed length, and VLP at
// every conditional sweep size — fused into one pass over gcc's test
// trace. The per-size profiling artifacts warm in parallel first; the
// many fixed-length cells at each size then share one path history
// inside the kernel, which is where the sweep's speedup comes from.
func (s *Suite) figure9Cells(ctx context.Context) ([]CondCell, error) {
	const bench = "gcc"
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(CondSizesKB))
	for i, kb := range CondSizesKB {
		sizes[i] = kb * 1024
	}
	type sizing struct {
		suiteLen, tunedLen int
		sel                vlp.Selector
	}
	sizings := make([]sizing, len(sizes))
	err = pool.ForEach(ctx, len(sizes), func(i int) error {
		k := condK(sizes[i])
		var err error
		if sizings[i].suiteLen, err = s.SuiteFixedLength(all, false, k); err != nil {
			return err
		}
		if sizings[i].tunedLen, err = s.TunedFixedLength(bench, false, k); err != nil {
			return err
		}
		prof, err := s.Profile(bench, false, k)
		if err != nil {
			return err
		}
		sizings[i].sel = prof.Selector()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cells []CondCell
	for i := range sizes {
		budget, sz := sizes[i], sizings[i]
		cells = append(cells,
			func() (bpred.CondPredictor, error) { return gshare.New(budget) },
			func() (bpred.CondPredictor, error) {
				return vlp.NewCond(budget, vlp.Fixed{L: sz.suiteLen}, vlp.Options{})
			},
			func() (bpred.CondPredictor, error) {
				return vlp.NewCond(budget, vlp.Fixed{L: sz.tunedLen}, vlp.Options{})
			},
			func() (bpred.CondPredictor, error) { return vlp.NewCond(budget, sz.sel, vlp.Options{}) },
		)
	}
	return cells, nil
}

// Figure9 reproduces the paper's Figure 9: gcc conditional branch
// misprediction versus predictor size (1 KB to 256 KB) for gshare, the
// fixed length path predictor (suite-wide length), the per-benchmark
// tuned fixed length path predictor, and the variable length path
// predictor.
func (s *Suite) Figure9(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	res := &SweepResult{
		Benchmark:  bench,
		Predictors: []string{"gshare", "fixed length path", "fixed length path (tuned)", "variable length path"},
	}
	for _, kb := range CondSizesKB {
		res.SizesBytes = append(res.SizesBytes, kb*1024)
	}
	res.Rates = newRates(len(res.Predictors), len(res.SizesBytes))

	cells, err := s.figure9Cells(ctx)
	if err != nil {
		return nil, err
	}
	pct, err := s.CondColumn(ctx, "fig9", bench, cells)
	if err != nil {
		return nil, err
	}
	for i := range res.SizesBytes {
		for p := range res.Predictors {
			res.Rates[p][i] = pct[i*len(res.Predictors)+p]
		}
	}
	return &Report{
		ID:    "fig9",
		Title: "Figure 9: Misprediction Rates for Conditional Branches in Gcc",
		Text:  res.chart("gcc conditional vs size"),
		Data:  res,
	}, nil
}

// Figure10 reproduces the paper's Figure 10: gcc indirect branch
// misprediction versus predictor size (0.5 KB to 32 KB) for the Chang,
// Hao and Patt path and pattern caches and the fixed, tuned-fixed, and
// variable length path predictors.
// figure10Cells builds Figure 10's fused indirect column, same shape as
// figure9Cells: warm the per-size artifacts in parallel, then lay the
// whole (size, predictor) grid out as one column.
func (s *Suite) figure10Cells(ctx context.Context) ([]IndirectCell, error) {
	const bench = "gcc"
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	sizes := append([]int(nil), IndSizesBytes...)
	type sizing struct {
		suiteLen, tunedLen int
		sel                vlp.Selector
	}
	sizings := make([]sizing, len(sizes))
	err = pool.ForEach(ctx, len(sizes), func(i int) error {
		k := indK(sizes[i])
		var err error
		if sizings[i].suiteLen, err = s.SuiteFixedLength(all, true, k); err != nil {
			return err
		}
		if sizings[i].tunedLen, err = s.TunedFixedLength(bench, true, k); err != nil {
			return err
		}
		prof, err := s.Profile(bench, true, k)
		if err != nil {
			return err
		}
		sizings[i].sel = prof.Selector()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cells []IndirectCell
	for i := range sizes {
		budget, sz := sizes[i], sizings[i]
		cells = append(cells,
			func() (bpred.IndirectPredictor, error) { return targetcache.NewPathBudget(budget) },
			func() (bpred.IndirectPredictor, error) { return targetcache.NewPatternBudget(budget) },
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budget, vlp.Fixed{L: sz.suiteLen}, vlp.Options{})
			},
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budget, vlp.Fixed{L: sz.tunedLen}, vlp.Options{})
			},
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budget, sz.sel, vlp.Options{})
			},
		)
	}
	return cells, nil
}

func (s *Suite) Figure10(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	res := &SweepResult{
		Benchmark: bench,
		Predictors: []string{"path (Chang, Hao, and Patt)", "pattern (Chang, Hao, and Patt)",
			"fixed length path", "fixed length path (tuned)", "variable length path"},
		SizesBytes: append([]int(nil), IndSizesBytes...),
	}
	res.Rates = newRates(len(res.Predictors), len(res.SizesBytes))

	cells, err := s.figure10Cells(ctx)
	if err != nil {
		return nil, err
	}
	pct, err := s.IndirectColumn(ctx, "fig10", bench, cells)
	if err != nil {
		return nil, err
	}
	for i := range res.SizesBytes {
		for p := range res.Predictors {
			res.Rates[p][i] = pct[i*len(res.Predictors)+p]
		}
	}
	return &Report{
		ID:    "fig10",
		Title: "Figure 10: Misprediction Rates for Indirect Branches in Gcc",
		Text:  res.chart("gcc indirect vs size"),
		Data:  res,
	}, nil
}

// headlineCondCells is the abstract's conditional column: gshare vs the
// profiled VLP at a 4 KB budget on gcc.
func (s *Suite) headlineCondCells() []CondCell {
	return []CondCell{
		func() (bpred.CondPredictor, error) { return gshare.New(4 * 1024) },
		func() (bpred.CondPredictor, error) {
			prof, err := s.Profile("gcc", false, condK(4*1024))
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(4*1024, prof.Selector(), vlp.Options{})
		},
	}
}

// headlineIndCells is the abstract's indirect column: the Chang-Hao-Patt
// caches vs the profiled VLP at 512 bytes on gcc.
func (s *Suite) headlineIndCells() []IndirectCell {
	return []IndirectCell{
		func() (bpred.IndirectPredictor, error) { return targetcache.NewPathBudget(512) },
		func() (bpred.IndirectPredictor, error) { return targetcache.NewPatternBudget(512) },
		func() (bpred.IndirectPredictor, error) {
			prof, err := s.Profile("gcc", true, indK(512))
			if err != nil {
				return nil, err
			}
			return vlp.NewIndirect(512, prof.Selector(), vlp.Options{})
		},
	}
}

// HeadlineResult carries the paper's abstract numbers: gcc conditional at
// a 4 KB budget (VLP vs gshare) and gcc indirect at 512 bytes (VLP vs the
// best competing predictor).
type HeadlineResult struct {
	CondGshare, CondVLP  float64 // percent, 4 KB
	IndBestCompeting     float64 // percent, 512 B (min of path/pattern)
	IndBestCompetingName string
	IndVLP               float64
}

// Headline reproduces the abstract's gcc numbers (paper: 4.3% vs 8.8%
// conditional at 4 KB; 27.7% vs 44.2% indirect at 512 bytes).
func (s *Suite) Headline(ctx context.Context) (*Report, error) {
	const bench = "gcc"
	res := &HeadlineResult{}

	// Both headline columns go into one plan, so the conditional and
	// indirect replays run concurrently under the engine's pool.
	plan := engine.NewPlan()
	plan.Cond(bench, "headline-cond", s.headlineCondCells())
	plan.Indirect(bench, "headline-ind", s.headlineIndCells())
	cols, err := s.eng.Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	cond, ind := cols[0], cols[1]
	res.CondGshare, res.CondVLP = cond[0], cond[1]
	res.IndBestCompeting, res.IndBestCompetingName = ind[0], "path"
	if ind[1] < ind[0] {
		res.IndBestCompeting, res.IndBestCompetingName = ind[1], "pattern"
	}
	res.IndVLP = ind[2]

	text := fmt.Sprintf(
		"gcc conditional @ 4KB:  VLP %.2f%%  vs  gshare %.2f%%   (paper: 4.3%% vs 8.8%%)\n"+
			"gcc indirect    @ 512B: VLP %.2f%%  vs  best competing (%s) %.2f%%   (paper: 27.7%% vs 44.2%%)\n",
		res.CondVLP, res.CondGshare, res.IndVLP, res.IndBestCompetingName, res.IndBestCompeting)
	return &Report{
		ID:    "headline",
		Title: "Headline: the abstract's gcc numbers",
		Text:  text,
		Data:  res,
	}, nil
}
