package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/engine"
	"repro/internal/textplot"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// BenchSeries is the data behind the paper's per-benchmark bar figures:
// one misprediction-rate series (percent) per predictor over a shared
// benchmark list.
type BenchSeries struct {
	Benchmarks []string
	Predictors []string
	// Rates[p][b] is predictor p's misprediction percentage on benchmark b.
	Rates [][]float64
}

// Rate returns the percentage for a (predictor, benchmark) pair.
func (r *BenchSeries) Rate(predictor, bench string) (float64, error) {
	pi := index(r.Predictors, predictor)
	if pi < 0 {
		return 0, &NotFoundError{Kind: "predictor", Key: predictor}
	}
	bi := index(r.Benchmarks, bench)
	if bi < 0 {
		return 0, &NotFoundError{Kind: "benchmark", Key: bench}
	}
	return r.Rates[pi][bi], nil
}

// Chart renders the series as the paper's grouped bar figure.
func (r *BenchSeries) Chart(title string) string {
	series := make([]textplot.Series, len(r.Predictors))
	for i, p := range r.Predictors {
		series[i] = textplot.Series{Name: p, Values: r.Rates[i]}
	}
	c := &textplot.BarChart{Title: title, Unit: "%", Labels: r.Benchmarks, Series: series}
	return c.String()
}

// MeanReduction returns the average relative misprediction reduction (in
// percent) of predictor `to` versus predictor `from` across benchmarks —
// the statistic behind the paper's "28.6% fewer mispredictions than
// gshare on average".
func (r *BenchSeries) MeanReduction(from, to string) (float64, error) {
	fi := index(r.Predictors, from)
	if fi < 0 {
		return 0, &NotFoundError{Kind: "predictor", Key: from}
	}
	ti := index(r.Predictors, to)
	if ti < 0 {
		return 0, &NotFoundError{Kind: "predictor", Key: to}
	}
	var sum float64
	n := 0
	for b := range r.Benchmarks {
		if r.Rates[fi][b] == 0 {
			continue
		}
		sum += 1 - r.Rates[ti][b]/r.Rates[fi][b]
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: no comparable benchmarks")
	}
	return 100 * sum / float64(n), nil
}

// condCompareCells builds the Figures 5-6 comparison column for one
// benchmark: gshare, fixed length path, variable length path at one
// hardware budget. The profile fetch lives inside the VLP cell (it is
// memoized per benchmark) so it runs inside the engine's pooled
// execution rather than serializing plan construction.
func (s *Suite) condCompareCells(bench string, budgetBytes, fixedLen int, k uint) []CondCell {
	return []CondCell{
		func() (bpred.CondPredictor, error) { return gshare.New(budgetBytes) },
		func() (bpred.CondPredictor, error) {
			return vlp.NewCond(budgetBytes, vlp.Fixed{L: fixedLen}, vlp.Options{})
		},
		func() (bpred.CondPredictor, error) {
			prof, err := s.Profile(bench, false, k)
			if err != nil {
				return nil, err
			}
			return vlp.NewCond(budgetBytes, prof.Selector(), vlp.Options{})
		},
	}
}

// indCompareCells builds the Figures 7-8 comparison column for one
// benchmark: Chang-Hao-Patt path and pattern target caches plus the
// fixed and variable length path predictors.
func (s *Suite) indCompareCells(bench string, budgetBytes, fixedLen int, k uint) []IndirectCell {
	return []IndirectCell{
		func() (bpred.IndirectPredictor, error) { return targetcache.NewPathBudget(budgetBytes) },
		func() (bpred.IndirectPredictor, error) { return targetcache.NewPatternBudget(budgetBytes) },
		func() (bpred.IndirectPredictor, error) {
			return vlp.NewIndirect(budgetBytes, vlp.Fixed{L: fixedLen}, vlp.Options{})
		},
		func() (bpred.IndirectPredictor, error) {
			prof, err := s.Profile(bench, true, k)
			if err != nil {
				return nil, err
			}
			return vlp.NewIndirect(budgetBytes, prof.Selector(), vlp.Options{})
		},
	}
}

// suiteFixedLength resolves the suite-wide tuned fixed length for a
// class and index width: tuned over the *whole* suite's profile inputs
// (§5.1), not just one figure's benchmark half.
func (s *Suite) suiteFixedLength(indirect bool, k uint) (int, error) {
	all, err := s.benches(workload.All())
	if err != nil {
		return 0, err
	}
	return s.SuiteFixedLength(all, indirect, k)
}

// condComparison produces the gshare / fixed length path / variable length
// path comparison of Figures 5-6 for the given benchmarks and hardware
// budget: one engine cell per benchmark, executed as a plan.
func (s *Suite) condComparison(ctx context.Context, bs []*workload.Benchmark, budgetBytes int) (*BenchSeries, error) {
	bs, err := s.benches(bs)
	if err != nil {
		return nil, err
	}
	k := condK(budgetBytes)
	fixedLen, err := s.suiteFixedLength(false, k)
	if err != nil {
		return nil, err
	}

	out := &BenchSeries{
		Predictors: []string{"gshare", "fixed length path", "variable length path"},
		Benchmarks: names(bs),
		Rates:      newRates(3, len(bs)),
	}
	id := fmt.Sprintf("compare-cond-%d", budgetBytes)
	plan := engine.NewPlan()
	for _, b := range bs {
		plan.Cond(b.Name(), id, s.condCompareCells(b.Name(), budgetBytes, fixedLen, k))
	}
	cols, err := s.eng.Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	for i := range bs {
		for p := range out.Predictors {
			out.Rates[p][i] = cols[i][p]
		}
	}
	return out, nil
}

// indirectComparison produces the Chang-Hao-Patt path & pattern versus
// fixed/variable length path comparison of Figures 7-8.
func (s *Suite) indirectComparison(ctx context.Context, bs []*workload.Benchmark, budgetBytes int) (*BenchSeries, error) {
	bs, err := s.benches(bs)
	if err != nil {
		return nil, err
	}
	k := indK(budgetBytes)
	fixedLen, err := s.suiteFixedLength(true, k)
	if err != nil {
		return nil, err
	}

	out := &BenchSeries{
		Predictors: []string{"path (Chang, Hao, and Patt)", "pattern (Chang, Hao, and Patt)",
			"fixed length path", "variable length path"},
		Benchmarks: names(bs),
		Rates:      newRates(4, len(bs)),
	}
	id := fmt.Sprintf("compare-ind-%d", budgetBytes)
	plan := engine.NewPlan()
	for _, b := range bs {
		plan.Indirect(b.Name(), id, s.indCompareCells(b.Name(), budgetBytes, fixedLen, k))
	}
	cols, err := s.eng.Execute(ctx, plan)
	if err != nil {
		return nil, err
	}
	for i := range bs {
		for p := range out.Predictors {
			out.Rates[p][i] = cols[i][p]
		}
	}
	return out, nil
}

func names(bs []*workload.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name()
	}
	return out
}

func newRates(p, b int) [][]float64 {
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, b)
	}
	return out
}
