package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/vlp"
	"repro/internal/workload"
)

// BenchSeries is the data behind the paper's per-benchmark bar figures:
// one misprediction-rate series (percent) per predictor over a shared
// benchmark list.
type BenchSeries struct {
	Benchmarks []string
	Predictors []string
	// Rates[p][b] is predictor p's misprediction percentage on benchmark b.
	Rates [][]float64
}

// Rate returns the percentage for a (predictor, benchmark) pair.
func (r *BenchSeries) Rate(predictor, bench string) (float64, error) {
	pi, bi := -1, -1
	for i, p := range r.Predictors {
		if p == predictor {
			pi = i
		}
	}
	for i, b := range r.Benchmarks {
		if b == bench {
			bi = i
		}
	}
	if pi < 0 || bi < 0 {
		return 0, fmt.Errorf("experiments: no rate for (%s, %s)", predictor, bench)
	}
	return r.Rates[pi][bi], nil
}

// Chart renders the series as the paper's grouped bar figure.
func (r *BenchSeries) Chart(title string) string {
	series := make([]textplot.Series, len(r.Predictors))
	for i, p := range r.Predictors {
		series[i] = textplot.Series{Name: p, Values: r.Rates[i]}
	}
	c := &textplot.BarChart{Title: title, Unit: "%", Labels: r.Benchmarks, Series: series}
	return c.String()
}

// MeanReduction returns the average relative misprediction reduction (in
// percent) of predictor `to` versus predictor `from` across benchmarks —
// the statistic behind the paper's "28.6% fewer mispredictions than
// gshare on average".
func (r *BenchSeries) MeanReduction(from, to string) (float64, error) {
	var fi, ti = -1, -1
	for i, p := range r.Predictors {
		if p == from {
			fi = i
		}
		if p == to {
			ti = i
		}
	}
	if fi < 0 || ti < 0 {
		return 0, fmt.Errorf("experiments: unknown predictors %q, %q", from, to)
	}
	var sum float64
	n := 0
	for b := range r.Benchmarks {
		if r.Rates[fi][b] == 0 {
			continue
		}
		sum += 1 - r.Rates[ti][b]/r.Rates[fi][b]
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: no comparable benchmarks")
	}
	return 100 * sum / float64(n), nil
}

// condComparison produces the gshare / fixed length path / variable length
// path comparison of Figures 5-6 for the given benchmarks and hardware
// budget.
func (s *Suite) condComparison(ctx context.Context, bs []*workload.Benchmark, budgetBytes int) (*BenchSeries, error) {
	bs, err := s.benches(bs)
	if err != nil {
		return nil, err
	}
	k := condK(budgetBytes)
	// The fixed length is tuned over the *whole* suite's profile inputs
	// (§5.1), not just the figure's half.
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	fixedLen, err := s.SuiteFixedLength(all, false, k)
	if err != nil {
		return nil, err
	}

	out := &BenchSeries{
		Predictors: []string{"gshare", "fixed length path", "variable length path"},
		Benchmarks: names(bs),
		Rates:      newRates(3, len(bs)),
	}
	id := fmt.Sprintf("compare-cond-%d", budgetBytes)
	err = sim.ForEach(ctx, len(bs), func(i int) error {
		b := bs[i]
		prof, err := s.Profile(b.Name(), false, k)
		if err != nil {
			return err
		}
		pct, err := s.CondColumn(ctx, id, b.Name(), []CondCell{
			func() (bpred.CondPredictor, error) { return gshare.New(budgetBytes) },
			func() (bpred.CondPredictor, error) {
				return vlp.NewCond(budgetBytes, vlp.Fixed{L: fixedLen}, vlp.Options{})
			},
			func() (bpred.CondPredictor, error) {
				return vlp.NewCond(budgetBytes, prof.Selector(), vlp.Options{})
			},
		})
		if err != nil {
			return err
		}
		for p := range out.Predictors {
			out.Rates[p][i] = pct[p]
		}
		return nil
	})
	return out, err
}

// indirectComparison produces the Chang-Hao-Patt path & pattern versus
// fixed/variable length path comparison of Figures 7-8.
func (s *Suite) indirectComparison(ctx context.Context, bs []*workload.Benchmark, budgetBytes int) (*BenchSeries, error) {
	bs, err := s.benches(bs)
	if err != nil {
		return nil, err
	}
	k := indK(budgetBytes)
	all, err := s.benches(workload.All())
	if err != nil {
		return nil, err
	}
	fixedLen, err := s.SuiteFixedLength(all, true, k)
	if err != nil {
		return nil, err
	}

	out := &BenchSeries{
		Predictors: []string{"path (Chang, Hao, and Patt)", "pattern (Chang, Hao, and Patt)",
			"fixed length path", "variable length path"},
		Benchmarks: names(bs),
		Rates:      newRates(4, len(bs)),
	}
	id := fmt.Sprintf("compare-ind-%d", budgetBytes)
	err = sim.ForEach(ctx, len(bs), func(i int) error {
		b := bs[i]
		prof, err := s.Profile(b.Name(), true, k)
		if err != nil {
			return err
		}
		pct, err := s.IndirectColumn(ctx, id, b.Name(), []IndirectCell{
			func() (bpred.IndirectPredictor, error) { return targetcache.NewPathBudget(budgetBytes) },
			func() (bpred.IndirectPredictor, error) { return targetcache.NewPatternBudget(budgetBytes) },
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budgetBytes, vlp.Fixed{L: fixedLen}, vlp.Options{})
			},
			func() (bpred.IndirectPredictor, error) {
				return vlp.NewIndirect(budgetBytes, prof.Selector(), vlp.Options{})
			},
		})
		if err != nil {
			return err
		}
		for p := range out.Predictors {
			out.Rates[p][i] = pct[p]
		}
		return nil
	})
	return out, err
}

func names(bs []*workload.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name()
	}
	return out
}

func newRates(p, b int) [][]float64 {
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, b)
	}
	return out
}
