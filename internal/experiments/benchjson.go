package experiments

import (
	"fmt"

	"repro/internal/obs"
)

// BenchReport converts the experiment report into the repository's
// stable bench-report schema (obs.Report), carrying the experiment's
// typed data and measured cost plus the suite configuration that
// produced them.
func (r *Report) BenchReport(cfg Config) *obs.Report {
	out := obs.NewReport(r.ID, r.Title)
	out.SetParam("base_records", cfg.base())
	out.SetParam("profile_records", cfg.profBase())
	out.Metrics = r.Metrics
	out.Data = r.Data
	return out
}

// WriteBench writes the report to its canonical results path,
// dir/bench_<id>.json, and returns that path. Every experiment the
// suite runs emits one such file; they are the inputs the BENCH_*
// perf-trajectory entries consume.
func (r *Report) WriteBench(dir string, cfg Config) (string, error) {
	if r.ID == "" {
		return "", fmt.Errorf("experiments: report has no ID to name its bench file")
	}
	return r.BenchReport(cfg).WriteBench(dir)
}
