package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/runx"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TracePath returns the recorded test-trace file for a benchmark under
// dir: "<dir>/<name>.vlpt", or the ".vlpt.gz" variant when only that
// exists.
func TracePath(dir, name string) string {
	plain := filepath.Join(dir, name+".vlpt")
	if _, err := os.Stat(plain); err == nil {
		return plain
	}
	gz := plain + ".gz"
	if _, err := os.Stat(gz); err == nil {
		return gz
	}
	return plain
}

// IngestTraces pre-loads every benchmark's recorded test trace from
// Cfg.TraceDir, priming the suite's test-trace cache. It is the suite's
// hardened ingestion boundary:
//
//   - transient I/O failures (interrupted reads, EAGAIN, fd exhaustion)
//     are retried with exponential backoff;
//   - permanent failures — a missing file, denied permission, or a
//     corrupt/truncated trace (trace.ErrCorrupt) — mark the benchmark
//     skipped with the reason recorded, and every other benchmark still
//     ingests, so one bad trace degrades the suite instead of killing it.
//
// It returns the skip map (also available later via Skipped). With no
// TraceDir configured it is a no-op: traces are generated in process as
// before.
func (s *Suite) IngestTraces(ctx context.Context) (map[string]string, error) {
	if s.Cfg.TraceDir == "" {
		return nil, nil
	}
	if _, err := os.Stat(s.Cfg.TraceDir); err != nil {
		return nil, fmt.Errorf("experiments: trace directory: %w", err)
	}
	for _, b := range workload.All() {
		if err := ctx.Err(); err != nil {
			return s.Skipped(), err
		}
		name := b.Name()
		path := TracePath(s.Cfg.TraceDir, name)
		var buf *trace.Buffer
		err := runx.Retry(ctx, runx.DefaultBackoff(), func() error {
			var err error
			buf, err = trace.ReadFile(path)
			return err
		})
		switch {
		case err == nil:
			s.primeTestRecords(name, buf.Records)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return s.Skipped(), err
		case errors.Is(err, trace.ErrCorrupt):
			s.Skip(name, fmt.Sprintf("corrupt trace %s: %v", path, err))
		default:
			s.Skip(name, fmt.Sprintf("unreadable trace %s: %v", path, err))
		}
	}
	return s.Skipped(), nil
}
