package experiments

import (
	"context"
	"fmt"

	"repro/internal/workload"
)

// Figure5 reproduces the paper's Figure 5: conditional branch
// misprediction rates on the SPEC benchmarks with a 16 KB predictor, for
// gshare, the fixed length path predictor, and the variable length path
// predictor.
func (s *Suite) Figure5(ctx context.Context) (*Report, error) {
	series, err := s.condComparison(ctx, workload.SPEC(), 16*1024)
	if err != nil {
		return nil, err
	}
	red, err := series.MeanReduction("gshare", "variable length path")
	if err != nil {
		return nil, err
	}
	footer := fmt.Sprintf("\nVLP mean misprediction reduction vs gshare: %.1f%% (paper, all 16: 28.6%%)\n", red)
	return &Report{
		ID:    "fig5",
		Title: "Figure 5: Misprediction Rates for Conditional Branches with a 16K byte Predictor (SPEC)",
		Text:  series.Chart("Conditional, 16KB, SPEC") + footer,
		Data:  series,
	}, nil
}

// Figure6 is Figure 5 for the non-SPEC benchmarks.
func (s *Suite) Figure6(ctx context.Context) (*Report, error) {
	series, err := s.condComparison(ctx, workload.NonSPEC(), 16*1024)
	if err != nil {
		return nil, err
	}
	red, err := series.MeanReduction("gshare", "variable length path")
	if err != nil {
		return nil, err
	}
	footer := fmt.Sprintf("\nVLP mean misprediction reduction vs gshare: %.1f%% (paper, all 16: 28.6%%)\n", red)
	return &Report{
		ID:    "fig6",
		Title: "Figure 6: Misprediction Rates for Conditional Branches with a 16K byte Predictor (Non-SPEC)",
		Text:  series.Chart("Conditional, 16KB, non-SPEC") + footer,
		Data:  series,
	}, nil
}

// Figure7 reproduces the paper's Figure 7: indirect branch misprediction
// rates on the SPEC benchmarks with a 2 KB predictor, for the Chang, Hao
// and Patt path and pattern target caches and the fixed/variable length
// path predictors. Benchmarks that execute no indirect branches under the
// configured trace length report 0% for every predictor, mirroring the
// near-empty bars the paper shows for compress.
func (s *Suite) Figure7(ctx context.Context) (*Report, error) {
	series, err := s.indirectComparison(ctx, workload.SPEC(), 2048)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig7",
		Title: "Figure 7: Misprediction Rates for Indirect Branches with a 2K byte Predictor (SPEC)",
		Text:  series.Chart("Indirect, 2KB, SPEC"),
		Data:  series,
	}, nil
}

// Figure8 is Figure 7 for the non-SPEC benchmarks.
func (s *Suite) Figure8(ctx context.Context) (*Report, error) {
	series, err := s.indirectComparison(ctx, workload.NonSPEC(), 2048)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig8",
		Title: "Figure 8: Misprediction Rates for Indirect Branches with a 2K byte Predictor (Non-SPEC)",
		Text:  series.Chart("Indirect, 2KB, non-SPEC"),
		Data:  series,
	}, nil
}
