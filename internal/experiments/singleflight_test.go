package experiments

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestSingleflightStep1AndProfile hammers the suite's memoised artifacts
// from many goroutines asking for the same keys and requires each
// artifact to be computed exactly once: the flight cells must serialise
// concurrent first requests, not just deduplicate sequential ones. Run
// under -race this also checks the caches for data races.
func TestSingleflightStep1AndProfile(t *testing.T) {
	s := NewSuite(Config{BaseRecords: 4000})
	const name = "gcc"
	const hammer = 16

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	record := func(err error) {
		if err != nil {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	for i := 0; i < hammer; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, err := s.ProfileSource(name)
			record(err)
		}()
		go func() {
			defer wg.Done()
			_, err := s.Step1(name, false, 10)
			record(err)
		}()
		go func() {
			defer wg.Done()
			_, err := s.Profile(name, false, 10)
			record(err)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}

	// One profile-input generation, one step-1 sweep, one two-step
	// profile — however many goroutines raced for them.
	records, step1, profiles := s.ComputeCounts()
	if records != 1 {
		t.Errorf("trace generations = %d, want 1", records)
	}
	if step1 != 1 {
		t.Errorf("step-1 sweeps = %d, want 1", step1)
	}
	if profiles != 1 {
		t.Errorf("two-step profiles = %d, want 1", profiles)
	}

	// Distinct keys still compute separately.
	if _, err := s.Step1(name, true, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.records(name, false); err != nil {
		t.Fatal(err)
	}
	records, step1, _ = s.ComputeCounts()
	if records != 2 || step1 != 2 {
		t.Errorf("after distinct keys: records = %d, step1 = %d, want 2/2", records, step1)
	}
}

// TestSingleflightSharesResultPointer: latecomers must receive the very
// artifact the winning computation produced, not a recomputed copy.
func TestSingleflightSharesResultPointer(t *testing.T) {
	s := NewSuite(Config{BaseRecords: 3000})
	const name = "go"
	const hammer = 8
	profiles := make([]interface{}, hammer)
	var wg sync.WaitGroup
	for i := 0; i < hammer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := s.Profile(name, false, 9)
			if err != nil {
				t.Error(err)
				return
			}
			profiles[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < hammer; i++ {
		if profiles[i] != profiles[0] {
			t.Fatalf("goroutine %d received a different *Profile than goroutine 0", i)
		}
	}
}

// TestSingleflightPrimedRecordsSkipGeneration: ingested test traces are
// installed as already-resolved flights, so TestSource never generates.
func TestSingleflightPrimedRecordsSkipGeneration(t *testing.T) {
	s := NewSuite(Config{BaseRecords: 3000})
	const name = "perl"
	primed := []trace.Record{{PC: 0x1004}}
	s.primeTestRecords(name, primed)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs, err := s.records(name, false)
			if err != nil {
				t.Error(err)
				return
			}
			if len(recs) != 1 || recs[0].PC != 0x1004 {
				t.Error("primed records not served")
			}
		}()
	}
	wg.Wait()
	if records, _, _ := s.ComputeCounts(); records != 0 {
		t.Errorf("trace generations = %d, want 0 for a primed benchmark", records)
	}
}
