package experiments

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/engine/pool"
	"repro/internal/pipeline"
	"repro/internal/tablefmt"
	"repro/internal/vlp"
)

// SpeedupResult carries the front-end timing comparison.
type SpeedupResult struct {
	Benchmarks []string
	// BaseIPC / VLPIPC are instructions-per-cycle with the baseline
	// (gshare + pattern cache) and path (VLP cond + VLP indirect)
	// front ends.
	BaseIPC, VLPIPC   []float64
	BaseMPKI, VLPMPKI []float64
	Speedup           []float64
}

// AblationSpeedup translates the predictors' misprediction differences
// into front-end cycles with the pipeline model (paper §1's motivation):
// a 4-wide fetch engine with a 10-cycle redirect penalty, comparing the
// gshare + pattern-cache baseline against the profiled variable length
// path predictors, with a return address stack in both configurations.
func (s *Suite) AblationSpeedup(ctx context.Context) (*Report, error) {
	const condBudget, indBudget = 16 * 1024, 2 * 1024
	kc, ki := condK(condBudget), indK(indBudget)
	benches := ablationBenches
	res := &SpeedupResult{
		Benchmarks: benches,
		BaseIPC:    make([]float64, len(benches)),
		VLPIPC:     make([]float64, len(benches)),
		BaseMPKI:   make([]float64, len(benches)),
		VLPMPKI:    make([]float64, len(benches)),
		Speedup:    make([]float64, len(benches)),
	}
	err := pool.ForEach(ctx, len(benches), func(i int) error {
		bench := benches[i]
		mk := func(cond bpred.CondPredictor, ind bpred.IndirectPredictor) (pipeline.Result, error) {
			src, err := s.TestSource(bench)
			if err != nil {
				return pipeline.Result{}, err
			}
			return pipeline.Run(src, cond, ind, pipeline.Params{Width: 4, Penalty: 10})
		}

		g, err := gshare.New(condBudget)
		if err != nil {
			return err
		}
		pat, err := targetcache.NewPatternBudget(indBudget)
		if err != nil {
			return err
		}
		base, err := mk(g, pat)
		if err != nil {
			return err
		}

		cprof, err := s.Profile(bench, false, kc)
		if err != nil {
			return err
		}
		vc, err := vlp.NewCond(condBudget, cprof.Selector(), vlp.Options{})
		if err != nil {
			return err
		}
		iprof, err := s.Profile(bench, true, ki)
		if err != nil {
			return err
		}
		vi, err := vlp.NewIndirect(indBudget, iprof.Selector(), vlp.Options{})
		if err != nil {
			return err
		}
		vres, err := mk(vc, vi)
		if err != nil {
			return err
		}

		res.BaseIPC[i], res.VLPIPC[i] = base.IPC(), vres.IPC()
		res.BaseMPKI[i], res.VLPMPKI[i] = base.MPKI(), vres.MPKI()
		res.Speedup[i] = vres.Speedup(base)
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Benchmark", "base IPC", "base MPKI", "VLP IPC", "VLP MPKI", "speedup")
	for i, b := range res.Benchmarks {
		tb.Row(b, res.BaseIPC[i], res.BaseMPKI[i], res.VLPIPC[i], res.VLPMPKI[i],
			fmt.Sprintf("%.3fx", res.Speedup[i]))
	}
	return &Report{
		ID:    "ablation-speedup",
		Title: "Extension: front-end cycles (4-wide, 10-cycle redirect): gshare+pattern vs VLP",
		Text:  tb.String(),
		Data:  res,
	}, nil
}

// AblationISABits measures §4.2's degradation path as the ISA carries
// fewer hash-number bits: the full profiled number, a coarse bucket hint
// refined by hardware, and no hint at all (pure hardware selection).
func (s *Suite) AblationISABits(ctx context.Context) (*Report, error) {
	res, err := s.runCondGrid(ctx, "ablation-isabits")
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ablation-isabits",
		Title: "Ablation: ISA bits for the hash number (paper §4.2), conditional 16KB",
		Text:  res.table(),
		Data:  res,
	}, nil
}
