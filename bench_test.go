// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (regenerating its rows or
// series each iteration and reporting the headline metric), plus
// micro-benchmarks of the predictor primitives themselves.
//
// The per-artifact benchmarks run the experiments at a reduced trace scale
// so `go test -bench=.` completes in minutes; cmd/paperrepro regenerates
// the same artifacts at full scale.
package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/arch"
	"repro/internal/bpred"
	"repro/internal/bpred/gshare"
	"repro/internal/bpred/targetcache"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/trace"
	"repro/internal/vlp"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchScale keeps the per-iteration experiment runs tractable.
const benchScale = 60000

func benchSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.Config{BaseRecords: benchScale})
}

// benchJSONDir, when set via the BENCH_JSON_DIR environment variable,
// makes every per-artifact benchmark write its final iteration's
// measured report as <dir>/bench_<id>.json — the same repro-bench/v1
// schema cmd/paperrepro emits, so CI's -bench smoke produces trajectory
// records. Empty (the default) disables the writes.
var benchJSONDir = os.Getenv("BENCH_JSON_DIR")

// runExperiment drives one registry entry per iteration. A fresh suite per
// iteration makes iterations independent (no memoised profiles), so ns/op
// reflects the full regeneration cost.
func runExperiment(b *testing.B, id string, metric func(*experiments.Report) float64, unit string) {
	b.Helper()
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rep, err := e.RunMeasured(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			last = metric(rep)
		}
		if benchJSONDir != "" && i == b.N-1 {
			if _, err := rep.WriteBench(benchJSONDir, s.Cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	if metric != nil {
		b.ReportMetric(last, unit)
	}
}

// --- One benchmark per paper artifact -------------------------------------

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", func(r *experiments.Report) float64 {
		res := r.Data.(*experiments.Table1Result)
		var total int64
		for _, row := range res.Rows {
			total += row.CondDynamic + row.IndirectDynamic
		}
		return float64(total)
	}, "branches")
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, "table2", func(r *experiments.Report) float64 {
		res := r.Data.(*experiments.Table2Result)
		return float64(res.Indirect[len(res.Indirect)-1].PathLength)
	}, "best-ind-len")
}

func benchSeriesMetric(predictor string) func(*experiments.Report) float64 {
	return func(r *experiments.Report) float64 {
		series := r.Data.(*experiments.BenchSeries)
		var sum float64
		for i, p := range series.Predictors {
			if p == predictor {
				for _, v := range series.Rates[i] {
					sum += v
				}
				return sum / float64(len(series.Rates[i]))
			}
		}
		return 0
	}
}

func BenchmarkFigure5(b *testing.B) {
	runExperiment(b, "fig5", benchSeriesMetric("variable length path"), "vlp-%miss")
}

func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, "fig6", benchSeriesMetric("variable length path"), "vlp-%miss")
}

func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, "fig7", benchSeriesMetric("variable length path"), "vlp-%miss")
}

func BenchmarkFigure8(b *testing.B) {
	runExperiment(b, "fig8", benchSeriesMetric("variable length path"), "vlp-%miss")
}

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", benchSeriesMetric("variable length path"), "vlp-%miss")
}

func BenchmarkFigure9(b *testing.B) {
	runExperiment(b, "fig9", func(r *experiments.Report) float64 {
		res := r.Data.(*experiments.SweepResult)
		v, _ := res.Rate("variable length path", 16*1024)
		return v
	}, "vlp-16KB-%miss")
}

func BenchmarkFigure10(b *testing.B) {
	runExperiment(b, "fig10", func(r *experiments.Report) float64 {
		res := r.Data.(*experiments.SweepResult)
		v, _ := res.Rate("variable length path", 2048)
		return v
	}, "vlp-2KB-%miss")
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", func(r *experiments.Report) float64 {
		return r.Data.(*experiments.HeadlineResult).CondVLP
	}, "gcc-4KB-%miss")
}

// --- Predictor micro-benchmarks -------------------------------------------

// benchTrace materialises one gcc test trace for the throughput benches.
func benchTrace(b *testing.B) *trace.Buffer {
	b.Helper()
	bench, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	return trace.Collect(bench.TestSource(benchScale))
}

func BenchmarkGshareLookupUpdate(b *testing.B) {
	buf := benchTrace(b)
	p, err := gshare.New(16 * 1024)
	if err != nil {
		b.Fatal(err)
	}
	recs := buf.Records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if r.Kind == arch.Cond {
			_ = p.Predict(r.PC)
		}
		p.Update(r)
	}
}

func BenchmarkVLPCondLookupUpdate(b *testing.B) {
	buf := benchTrace(b)
	p, err := vlp.NewCond(16*1024, vlp.Fixed{L: 8}, vlp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	recs := buf.Records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if r.Kind == arch.Cond {
			_ = p.Predict(r.PC)
		}
		p.Update(r)
	}
}

func BenchmarkVLPIndirectLookupUpdate(b *testing.B) {
	buf := benchTrace(b)
	p, err := vlp.NewIndirect(2048, vlp.Fixed{L: 8}, vlp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	recs := buf.Records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if r.Kind.IndirectTarget() {
			_ = p.Predict(r.PC)
		}
		p.Update(r)
	}
}

func BenchmarkTargetCachePath(b *testing.B) {
	buf := benchTrace(b)
	p, err := targetcache.NewPathBudget(2048)
	if err != nil {
		b.Fatal(err)
	}
	recs := buf.Records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if r.Kind.IndirectTarget() {
			_ = p.Predict(r.PC)
		}
		p.Update(r)
	}
}

// BenchmarkHashSetInsert measures the cost of the incremental partial-sum
// update (§4.1): the full 32-register bank, and the bank bounded to the 8
// registers a Fixed{L:8} predictor actually reads (SetMaxNeeded).
func BenchmarkHashSetInsert(b *testing.B) {
	for _, c := range []struct {
		name    string
		bounded int
	}{
		{"full32", 0},
		{"bounded8", 8},
	} {
		b.Run(c.name, func(b *testing.B) {
			hs, err := vlp.NewHashSet(14, 32)
			if err != nil {
				b.Fatal(err)
			}
			if c.bounded > 0 {
				hs.SetMaxNeeded(c.bounded)
			}
			rng := xrand.New(1)
			addrs := make([]arch.Addr, 1024)
			for i := range addrs {
				addrs[i] = arch.Addr(rng.Uint64() & 0xffffff)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hs.Insert(addrs[i%len(addrs)])
			}
		})
	}
}

// BenchmarkHashSetDirect measures the naive multi-stage recomputation the
// partial sums replace, at the deepest path length.
func BenchmarkHashSetDirect(b *testing.B) {
	hs, err := vlp.NewHashSet(14, 32)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	for i := 0; i < 64; i++ {
		hs.Insert(arch.Addr(rng.Uint64() & 0xffffff))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hs.DirectIndex(32)
	}
}

// BenchmarkProfilingPipeline measures the full two-step heuristic (§3.5)
// on one benchmark's profile input.
func BenchmarkProfilingPipeline(b *testing.B) {
	bench, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	buf := trace.Collect(bench.ProfileSource(benchScale))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := profile.Cond(trace.NewBuffer(buf.Records), profile.Config{TableBits: 14}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures the synthetic substrate's execution
// speed (records generated per op).
func BenchmarkTraceGeneration(b *testing.B) {
	bench, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var r trace.Record
	src := bench.TestSource(1 << 30) // effectively unbounded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !src.Next(&r) {
			b.Fatal("source exhausted")
		}
	}
}

// BenchmarkServeEndToEnd measures the prediction service round trip:
// chunk encoding, HTTP transport, server-side decode, and batched
// replay, driven by the same load generator cmd/vlpload ships. Each
// iteration streams the whole trace through a fresh session, so ns/op
// is the cost of serving one complete workload.
func BenchmarkServeEndToEnd(b *testing.B) {
	limits := serve.DefaultLimits()
	limits.Workers = 16
	srv, err := serve.New(limits, nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	buf := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:      ts.URL,
			SessionID:    fmt.Sprintf("bench-%d", i),
			Class:        "cond",
			Spec:         "gshare:budget=16KB",
			Clients:      4,
			ChunkRecords: 8192,
		}, trace.NewBuffer(buf.Records))
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 || res.Records != int64(buf.Len()) {
			b.Fatalf("degraded run: %+v", res)
		}
	}
	b.StopTimer()
}

// BenchmarkFusedSweep pits the fused column kernel against the
// sequential per-cell oracle on a Table-2-shaped grid — one benchmark,
// a path-length sweep at each table size plus a gshare baseline — so
// the reported ratio is the speedup an experiment sweep actually sees.
// The grid is sharing-friendly the way Table 2 is: all fixed-length
// cells at one table size have the same history configuration and
// share a single path history, so the per-record THB insert — the
// dominant cost of a deep path predictor's update — happens once per
// size instead of once per length.
func BenchmarkFusedSweep(b *testing.B) {
	buf := benchTrace(b)
	sizes := []int{4096, 16384}
	lengths := []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 28, 32}
	build := func(b *testing.B) []bpred.CondPredictor {
		preds := make([]bpred.CondPredictor, 0, len(sizes)*(1+len(lengths)))
		for _, size := range sizes {
			g, err := gshare.New(size)
			if err != nil {
				b.Fatal(err)
			}
			preds = append(preds, g)
			for _, l := range lengths {
				p, err := vlp.NewCond(size, vlp.Fixed{L: l}, vlp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				preds = append(preds, p)
			}
		}
		return preds
	}
	for _, mode := range []struct {
		name    string
		perCell bool
	}{{"percell", true}, {"fused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh predictor state per iteration, constructed off the
				// clock: the measured cost is the replay alone.
				b.StopTimer()
				preds := build(b)
				b.StartTimer()
				res, err := experiments.RunCondColumn(
					context.Background(), preds, trace.NewBuffer(buf.Records), mode.perCell)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(preds) || res[0].Branches == 0 {
					b.Fatalf("degraded run: %d results", len(res))
				}
			}
		})
	}
}

// BenchmarkEngineDedup measures what the execution engine's
// cross-experiment cell dedup is worth. Two plans share half their
// cells — the fig7/table3 shape, where the SPEC and indirect-heavy
// benchmark sets overlap — and each iteration executes both: with
// dedup the shared cells replay once, under NoDedup every submission
// replays (what independent execution surfaces did before the unified
// engine). The wall-clock delta between the two sub-benchmarks is the
// saving a suite run gets for free from the shared scheduler;
// bench_compare.sh records it in BENCH_engine.json.
func BenchmarkEngineDedup(b *testing.B) {
	buf := benchTrace(b)
	benches := []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"}
	sharedBenches := benches[:4]
	mkCells := func() []engine.CondCell {
		out := make([]engine.CondCell, 0, 3)
		for _, budget := range []int{1024, 4096, 16384} {
			budget := budget
			out = append(out, func() (bpred.CondPredictor, error) { return gshare.New(budget) })
		}
		return out
	}
	src := func(string) (trace.Source, error) { return trace.NewBuffer(buf.Records), nil }
	for _, mode := range []struct {
		name    string
		noDedup bool
	}{{"nodedup", true}, {"dedup", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.Config{Source: src, NoDedup: mode.noDedup})
				first, second := engine.NewPlan(), engine.NewPlan()
				for _, t := range benches {
					first.Cond(t, "compare", mkCells())
				}
				for _, t := range sharedBenches {
					second.Cond(t, "compare", mkCells())
				}
				if _, err := e.Execute(context.Background(), first); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Execute(context.Background(), second); err != nil {
					b.Fatal(err)
				}
				want := int64(len(benches))
				if mode.noDedup {
					want += int64(len(sharedBenches))
				}
				if c := e.Counters(); c.Executed != want {
					b.Fatalf("executed %d cells, want %d", c.Executed, want)
				}
			}
		})
	}
}

// BenchmarkEndToEndSim measures the simulation loop as a whole: predictor,
// statistics, and trace replay.
func BenchmarkEndToEndSim(b *testing.B) {
	buf := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := gshare.New(16 * 1024)
		if err != nil {
			b.Fatal(err)
		}
		res := sim.RunCond(context.Background(), p, trace.NewBuffer(buf.Records), sim.Options{})
		if res.Branches == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSnapshotRoundtrip measures the vlps/v1 state codec on the
// predictor the hibernation paths actually carry: a 64KB variable
// length path predictor warmed over the benchmark trace, captured,
// encoded, decoded, and restored into a fresh instance per iteration —
// the full cost of one spill plus one rehydrate.
func BenchmarkSnapshotRoundtrip(b *testing.B) {
	buf := benchTrace(b)
	warm, err := vlp.NewCond(64*1024, vlp.Fixed{L: 8}, vlp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if res := sim.RunCond(context.Background(), warm, trace.NewBuffer(buf.Records), sim.Options{}); res.Branches == 0 {
		b.Fatal("empty warm-up run")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn, err := snap.Capture("cond", "vlp:budget=64KB", warm)
		if err != nil {
			b.Fatal(err)
		}
		blob := sn.Encode()
		again, err := snap.Decode(blob)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		fresh, err := vlp.NewCond(64*1024, vlp.Fixed{L: 8}, vlp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := again.Restore("cond", "vlp:budget=64KB", fresh); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.SetBytes(int64(len(blob)))
		}
	}
}
