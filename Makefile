# Repository CI entry points. `make check` is what CI runs; the
# individual targets exist so a developer can run one stage alone.
GO ?= go
RESULTS ?= results

.PHONY: all check fmt vet build test bench-smoke bench-compare serve-smoke dist-smoke chaos-smoke snap-smoke clean clean-smoke

all: check

check: fmt vet build test bench-smoke serve-smoke dist-smoke chaos-smoke snap-smoke

# Fail if any file needs reformatting (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A one-iteration benchmark pass that must emit valid repro-bench/v1
# reports: BENCH_JSON_DIR routes each artifact benchmark's measured
# report to $(RESULTS)/bench_<id>.json, and obscheck validates them.
bench-smoke:
	BENCH_JSON_DIR=$(RESULTS) $(GO) test -run '^$$' -bench 'BenchmarkHeadline|BenchmarkTable2' -benchtime 1x .
	$(GO) run ./cmd/obscheck -dir $(RESULTS)

# End-to-end check of the prediction service: vlpserve on a random
# port, vlpload replay, served rate byte-identical to batch vlpsim,
# /metrics schema-valid, clean drain on SIGTERM.
serve-smoke:
	RESULTS=$(RESULTS) ./scripts/serve_smoke.sh

# End-to-end check of distributed sweep execution: two vlpserve
# workers, vlpsweep across them, merged artifacts byte-identical to an
# in-process paperrepro run, bench JSONs schema-valid, clean drain.
dist-smoke:
	RESULTS=$(RESULTS) ./scripts/dist_smoke.sh

# Chaos acceptance gate: a sweep under aggressive seeded fault
# injection (client and server side) still merges artifacts
# byte-identical to a clean in-process run, and the same seed replays
# the same injected-fault schedule.
chaos-smoke:
	RESULTS=$(RESULTS) ./scripts/chaos_smoke.sh

# Crash-recovery gate for session hibernation: kill -9 vlpserve
# mid-stream, restart on the same -spill-dir, and the resumed session's
# final rate is byte-identical to an uninterrupted batch run.
snap-smoke:
	RESULTS=$(RESULTS) ./scripts/snap_smoke.sh

# Run the hot-path micro-benchmarks (-count=5) and diff against the
# recorded baseline: benchstat when installed, plain mean deltas
# otherwise. The first run on a machine seeds the baseline file.
bench-compare:
	RESULTS=$(RESULTS) ./scripts/bench_compare.sh

# Remove smoke-run scratch alone. The smoke scripts clean up after
# themselves on exit; this sweeps up after KEEP=1 runs or killed ones.
clean-smoke:
	rm -rf $(RESULTS)/serve_smoke_* $(RESULTS)/dist_smoke_* $(RESULTS)/chaos_smoke_* $(RESULTS)/snap_smoke_*
	rm -f $(RESULTS)/bench_serve_smoke_*.json $(RESULTS)/bench_snap_smoke_*.json

clean: clean-smoke
	rm -f $(RESULTS)/bench_*.json $(RESULTS)/bench_micro*.txt
