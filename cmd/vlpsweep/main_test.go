package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/serve"
)

func TestRunRejectsBadInputs(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "", "headline", 30000, 0, "", "", false, false, nil, 0, nil); err == nil {
		t.Error("no workers accepted")
	}
	if err := run(ctx, " , ,", "headline", 30000, 0, "", "", false, false, nil, 0, nil); err == nil {
		t.Error("blank worker list accepted")
	}
}

// TestRunSweepsOneWorker drives the real entry point against a real
// worker and checks the merged artifacts land.
func TestRunSweepsOneWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment cell")
	}
	s, err := serve.New(serve.DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetJobRunner(dist.NewRunner("", nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	outDir, jsonDir := t.TempDir(), t.TempDir()
	// Trailing slash and whitespace in the worker list are tolerated.
	if err := run(context.Background(), " "+ts.URL+"/ ", "headline", 30000, 15000,
		outDir, jsonDir, false, false, nil, 0, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "headline.txt")); err != nil {
		t.Errorf("rendered artifact missing: %v", err)
	}
	for _, name := range []string{"headline", "sweep"} {
		if _, err := obs.ReadReport(obs.BenchPath(jsonDir, name)); err != nil {
			t.Errorf("bench report %s: %v", name, err)
		}
	}
}
