// Vlpsweep is the distributed sweep coordinator: it shards an
// experiment sweep across running vlpserve workers (their POST /v1/jobs
// endpoint) and merges the results into the same artifact files an
// in-process paperrepro run writes — byte-identical rendered text for
// deterministic cells, plus per-cell bench reports, a resume manifest,
// and a bench_sweep.json summary with per-worker throughput.
//
// Start two workers, then sweep:
//
//	vlpserve -addr 127.0.0.1:9001 &
//	vlpserve -addr 127.0.0.1:9002 &
//	vlpsweep -workers http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	    -exp headline,fig9 -base 400000 -out out -json results
//
// Dispatch is work-stealing: each worker pulls its next cell as it
// finishes the last. Saturated or transiently failing cells retry on
// the same worker (honoring Retry-After); a worker that dies — its
// connection drops or it fails two consecutive health checks — has its
// in-flight cell requeued onto the survivors. A deterministic
// experiment failure is recorded once and fails the exit code after
// everything else has run, exactly like paperrepro. -resume skips cells
// whose bench reports already validate, and the manifest is shared with
// paperrepro, so the two tools' partial runs compose. DESIGN.md §11
// describes the model.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/runx"
)

func main() {
	var (
		workers  = flag.String("workers", "", "comma-separated worker base URLs (required), e.g. http://127.0.0.1:9001,http://127.0.0.1:9002")
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		base     = flag.Int("base", 400000, "suite base trace length in records")
		profBase = flag.Int("profbase", 0, "profile input length (default: same as -base)")
		out      = flag.String("out", "", "write each cell's rendered report to <out>/<id>.txt")
		jsonDir  = flag.String("json", "results", "write bench_<id>.json reports, the manifest, and bench_sweep.json to this directory (\"\" to disable)")
		resume   = flag.Bool("resume", false, "skip cells whose bench reports are already present and valid (needs -json)")
		warm     = flag.Bool("warmcells", false, "queue shared engine cells ahead of the experiments so workers compute them once")
		timeout  = flag.Duration("timeout", 0, "abort the whole sweep after this long (0 = no deadline)")
		jobTO    = flag.Duration("job-timeout", 0, "per-cell request deadline on each worker (0 = default 2m)")
		chaosStr = flag.String("chaos", "", "client-side fault injection spec, e.g. chaos:seed=7,latency=50ms@0.2,reset=0.05,truncate=0.02,stall=0.01")
		verbose  = flag.Bool("v", false, "narrate progress to stderr")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, *verbose)

	var inj *chaos.Injector
	if *chaosStr != "" {
		spec, err := chaos.ParseSpec(*chaosStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vlpsweep:", err)
			os.Exit(2)
		}
		inj = chaos.New(spec)
	}

	ctx, cancelSignals := runx.WithSignals(context.Background())
	defer cancelSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *workers, *exp, *base, *profBase, *out, *jsonDir, *resume, *warm, inj, *jobTO, log); err != nil {
		fmt.Fprintln(os.Stderr, "vlpsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, workers, exp string, base, profBase int, out, jsonDir string, resume, warm bool, inj *chaos.Injector, jobTimeout time.Duration, log *obs.Logger) error {
	var urls []string
	for _, w := range strings.Split(workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, strings.TrimRight(w, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("no workers: pass -workers with at least one vlpserve URL")
	}
	opts := dist.Options{
		Workers:        urls,
		Exp:            exp,
		BaseRecords:    base,
		ProfileRecords: profBase,
		OutDir:         out,
		JSONDir:        jsonDir,
		Resume:         resume,
		WarmCells:      warm,
		JobTimeout:     jobTimeout,
		Log:            log,
	}
	if inj != nil {
		opts.Transport = inj.Transport(nil)
	}
	summary, err := dist.Sweep(ctx, opts)
	if summary != nil {
		printSummary(summary)
	}
	if inj != nil {
		// One stable line per run: the chaos smoke's replay stage diffs
		// this between two same-seed sweeps to pin count determinism.
		fmt.Printf("chaos: injected %s\n", inj.CountsString())
	}
	return err
}

func printSummary(summary *obs.Report) {
	data, ok := summary.Data.(dist.SweepData)
	if !ok {
		return
	}
	warmed := ""
	if data.WarmCells > 0 {
		warmed = fmt.Sprintf(" (+%d warm)", data.WarmCells)
	}
	fmt.Printf("sweep: %d cell(s) dispatched%s, %d failed, %d skipped, %v wall\n",
		data.Cells, warmed, len(data.Failed), len(summary.Skipped),
		time.Duration(summary.Metrics.WallNanos).Round(time.Millisecond))
	for _, w := range data.Workers {
		state := "alive"
		if !w.Alive {
			state = "dead"
		}
		fmt.Printf("  worker %s: %d cell(s), %d requeue(s), p95 %v, %s\n",
			w.URL, w.Jobs, w.Requeues,
			time.Duration(w.Latency.P95Nanos).Round(time.Millisecond), state)
	}
}
