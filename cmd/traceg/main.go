// Traceg generates and inspects branch trace files for the synthetic
// benchmark suite — the repository's stand-in for ATOM-instrumented
// binaries (paper §5.1).
//
// Generate a trace file:
//
//	traceg -bench gcc -input test -n 250000 -o gcc.vlpt
//
// Summarise an existing trace (or a benchmark directly):
//
//	traceg -summary gcc.vlpt
//	traceg -bench perl -n 100000
//
// With no -o, traceg prints the Table-1-style workload summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/runx"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name ("+strings.Join(workload.Names(), ", ")+")")
		input   = flag.String("input", "test", "input set: test or profile")
		n       = flag.Int("n", 250000, "suite base trace length in records")
		out     = flag.String("o", "", "write the trace to this file")
		summary = flag.String("summary", "", "summarise an existing trace file instead of generating")
		list    = flag.Bool("list", false, "list benchmark names and exit")
		verbose = flag.Bool("v", false, "narrate progress to stderr")
	)
	var pflags obs.ProfileFlags
	pflags.Register(flag.CommandLine)
	flag.Parse()
	stop, err := pflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceg:", err)
		os.Exit(1)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	err = run(ctx, *bench, *input, *n, *out, *summary, *list,
		obs.NewLogger(os.Stderr, *verbose))
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceg:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench, input string, n int, out, summary string, list bool, log *obs.Logger) error {
	if list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return nil
	}
	span := obs.StartSpan()
	var src trace.Source
	var err error
	if summary != "" {
		src, err = trace.ReadFile(summary)
	} else {
		src, err = cliutil.Resolve(ctx, cliutil.SourceSpec{Bench: bench, Input: input, Records: n})
	}
	if err != nil {
		return err
	}
	log.Progressf("trace materialised: %s", span.End())
	if out != "" {
		if err := trace.WriteFile(out, src); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	s := trace.Summarize(src)
	fmt.Printf("records:            %d\n", s.DynamicTotal())
	fmt.Printf("conditional:        %d dynamic, %d static, %.1f%% taken\n",
		s.DynamicCond(), s.StaticCond, 100*s.TakenRate())
	fmt.Printf("indirect (no ret):  %d dynamic, %d static\n", s.DynamicIndirect(), s.StaticIndirect)
	for kind, count := range s.DynamicByKind {
		fmt.Printf("  kind %-8s %d\n", fmt.Sprint(kindName(kind)), count)
	}
	return nil
}

func kindName(i int) string {
	names := []string{"cond", "uncond", "call", "icall", "indirect", "return"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprint(i)
}
