package main

import (
	"context"
	"repro/internal/obs"

	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndSummarise(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.vlpt")
	if err := run(context.Background(), "compress", "test", 20000, out, "", false, obs.Discard); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	if err := run(context.Background(), "", "", 0, "", out, false, obs.Discard); err != nil {
		t.Fatalf("summarise: %v", err)
	}
}

func TestList(t *testing.T) {
	if err := run(context.Background(), "", "", 0, "", "", true, obs.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(context.Background(), "nonesuch", "test", 1000, "", "", false, obs.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(context.Background(), "", "", 0, "", "/no/such.vlpt", false, obs.Discard); err == nil {
		t.Error("missing summary file accepted")
	}
}
