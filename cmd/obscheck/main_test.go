package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snap"
)

func writeValid(t *testing.T, dir, name string) string {
	t.Helper()
	rep := obs.NewReport(name, "test report")
	rep.Metrics = obs.RunMetrics{WallNanos: 1000, Branches: 10, BranchesPerSec: 1e7, Workers: 1}
	path, err := rep.WriteBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFilesAndDir(t *testing.T) {
	dir := t.TempDir()
	p1 := writeValid(t, dir, "headline")
	writeValid(t, dir, "fig9")
	if err := run("", "", "", []string{p1}, true, os.Stdout); err != nil {
		t.Errorf("explicit file: %v", err)
	}
	if err := run(dir, "", "", nil, true, os.Stdout); err != nil {
		t.Errorf("dir scan: %v", err)
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bench_bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", "", []string{bad}, true, os.Stdout); err == nil {
		t.Error("invalid schema accepted")
	}
	if err := run(dir, "", "", nil, true, os.Stdout); err == nil {
		t.Error("directory with invalid report accepted")
	}
}

func TestCheckEmptyInputs(t *testing.T) {
	if err := run("", "", "", nil, true, os.Stdout); err == nil {
		t.Error("no inputs accepted")
	}
	if err := run(t.TempDir(), "", "", nil, true, os.Stdout); err == nil {
		t.Error("empty directory accepted")
	}
	if err := run("", "", "", []string{"/no/such.json"}, true, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCheckURL scrapes a live vlpserve /metrics endpoint — the check CI
// runs after serve-smoke to prove the server's observability output is
// schema-valid, not just well-intentioned.
func TestCheckURL(t *testing.T) {
	s, err := serve.New(serve.DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := run("", ts.URL+"/metrics", "", nil, true, os.Stdout); err != nil {
		t.Errorf("live metrics: %v", err)
	}

	// A URL that serves junk must fail, as must a down server.
	junk := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"schema":"nope"}`))
	}))
	defer junk.Close()
	if err := run("", junk.URL, "", nil, true, os.Stdout); err == nil {
		t.Error("junk endpoint accepted")
	}
	down := httptest.NewServer(nil)
	down.Close()
	if err := run("", down.URL, "", nil, true, os.Stdout); err == nil {
		t.Error("unreachable endpoint accepted")
	}
}

// TestCheckSnapshot validates the -snap mode: a well-formed vlps/v1
// file passes, and a single flipped bit (caught by the trailing
// checksum) or a missing file is a hard error.
func TestCheckSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := &snap.Snapshot{
		Class: "cond",
		Spec:  "gshare:budget=16KB",
		Meta:  []byte{1, 2, 3},
		State: []byte("predictor state bytes"),
	}
	good := filepath.Join(dir, "good.vlps")
	if err := s.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", good, nil, true, os.Stdout); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}

	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	bad := filepath.Join(dir, "bad.vlps")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", bad, nil, true, os.Stdout); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	if err := run("", "", filepath.Join(dir, "gone.vlps"), nil, true, os.Stdout); err == nil {
		t.Error("missing snapshot accepted")
	}
}
