// Obscheck validates bench report files against the repro-bench/v1
// schema and prints a one-line summary per report — the checker CI runs
// after the benchmark smoke to prove the observability pipeline emitted
// well-formed records.
//
// Validate explicit files:
//
//	obscheck results/bench_headline.json results/bench_fig9.json
//
// Validate every bench_*.json in a directory:
//
//	obscheck -dir results
//
// Scrape and validate a live vlpserve metrics endpoint:
//
//	obscheck -url http://127.0.0.1:8080/v1/metrics
//
// Validate a vlps/v1 predictor snapshot (header, version, checksum,
// and an encode/decode round trip):
//
//	obscheck -snap state.vlps
//
// It exits non-zero if any file is missing, unparsable, or fails schema
// validation, or (with -dir) if the directory holds no reports at all.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/snap"
)

func main() {
	var (
		dir      = flag.String("dir", "", "validate every bench_*.json in this directory")
		url      = flag.String("url", "", "fetch and validate a live /v1/metrics endpoint")
		snapPath = flag.String("snap", "", "validate a vlps/v1 predictor snapshot file")
		quiet    = flag.Bool("q", false, "suppress the per-report summary lines")
	)
	flag.Parse()
	if err := run(*dir, *url, *snapPath, flag.Args(), *quiet, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

// checkSnapshot validates a vlps/v1 snapshot file: the decode proves
// the magic, version, field bounds, and trailing checksum, and a fresh
// encode must decode back to the identical snapshot — the same
// round-trip the serve spill path and vlpsim -load-state rely on.
func checkSnapshot(path string, quiet bool, out *os.File) error {
	s, err := snap.LoadFile(path)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	again, err := snap.Decode(s.Encode())
	if err != nil {
		return fmt.Errorf("%s: re-encode did not round-trip: %w", path, err)
	}
	if again.Class != s.Class || again.Spec != s.Spec ||
		!bytes.Equal(again.Meta, s.Meta) || !bytes.Equal(again.State, s.State) {
		return fmt.Errorf("%s: re-encode did not round-trip", path)
	}
	if err := s.CheckSpec(s.Class, s.Spec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if !quiet {
		fmt.Fprintf(out, "%-22s ok         class %-9s spec %-28s %8d state bytes  %4d meta bytes\n",
			path, s.Class, s.Spec, len(s.State), len(s.Meta))
	}
	return nil
}

// fetchReport scrapes url and holds the body to the same schema checks a
// bench report file gets: a /v1/metrics endpoint is just a report served
// over HTTP.
func fetchReport(url string) (*obs.Report, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	r, err := obs.DecodeReport(body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return r, nil
}

func run(dir, url, snapPath string, paths []string, quiet bool, out *os.File) error {
	var checked int
	if snapPath != "" {
		if err := checkSnapshot(snapPath, quiet, out); err != nil {
			return err
		}
		checked++
	}
	var reports []*obs.Report
	if dir != "" {
		got, err := obs.GlobReports(dir)
		if err != nil {
			return err
		}
		if len(got) == 0 {
			return fmt.Errorf("no bench_*.json reports in %s", dir)
		}
		reports = got
	}
	if url != "" {
		r, err := fetchReport(url)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	for _, path := range paths {
		r, err := obs.ReadReport(path)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	if len(reports) == 0 && checked == 0 {
		return fmt.Errorf("nothing to check: pass report files, -dir, -url, or -snap")
	}
	var failures int
	for _, r := range reports {
		failures += len(r.Failures)
		if quiet {
			continue
		}
		status := "ok"
		if len(r.Failures) > 0 {
			status = fmt.Sprintf("%d failed", len(r.Failures))
		}
		fmt.Fprintf(out, "%-22s %-9s %10v wall  %12d branches  %14.0f branches/sec\n",
			r.Name, status, r.Metrics.Wall().Round(time.Microsecond), r.Metrics.Branches, r.Metrics.BranchesPerSec)
		for _, f := range r.Failures {
			fmt.Fprintf(out, "    failure [%s] %s: %s\n", f.Kind, f.Name, f.Error)
		}
		names := make([]string, 0, len(r.Skipped))
		for name := range r.Skipped {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(out, "    skipped %s: %s\n", name, r.Skipped[name])
		}
	}
	if !quiet && len(reports) > 0 {
		fmt.Fprintf(out, "%d report(s) valid\n", len(reports))
	}
	if failures > 0 {
		// The reports are well-formed, but they record a degraded run;
		// CI should notice that too.
		return fmt.Errorf("%d recorded failure(s) across %d report(s)", failures, len(reports))
	}
	return nil
}
