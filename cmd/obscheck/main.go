// Obscheck validates bench report files against the repro-bench/v1
// schema and prints a one-line summary per report — the checker CI runs
// after the benchmark smoke to prove the observability pipeline emitted
// well-formed records.
//
// Validate explicit files:
//
//	obscheck results/bench_headline.json results/bench_fig9.json
//
// Validate every bench_*.json in a directory:
//
//	obscheck -dir results
//
// Scrape and validate a live vlpserve metrics endpoint:
//
//	obscheck -url http://127.0.0.1:8080/v1/metrics
//
// It exits non-zero if any file is missing, unparsable, or fails schema
// validation, or (with -dir) if the directory holds no reports at all.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		dir   = flag.String("dir", "", "validate every bench_*.json in this directory")
		url   = flag.String("url", "", "fetch and validate a live /v1/metrics endpoint")
		quiet = flag.Bool("q", false, "suppress the per-report summary lines")
	)
	flag.Parse()
	if err := run(*dir, *url, flag.Args(), *quiet, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

// fetchReport scrapes url and holds the body to the same schema checks a
// bench report file gets: a /v1/metrics endpoint is just a report served
// over HTTP.
func fetchReport(url string) (*obs.Report, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	r, err := obs.DecodeReport(body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return r, nil
}

func run(dir, url string, paths []string, quiet bool, out *os.File) error {
	var reports []*obs.Report
	if dir != "" {
		got, err := obs.GlobReports(dir)
		if err != nil {
			return err
		}
		if len(got) == 0 {
			return fmt.Errorf("no bench_*.json reports in %s", dir)
		}
		reports = got
	}
	if url != "" {
		r, err := fetchReport(url)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	for _, path := range paths {
		r, err := obs.ReadReport(path)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	if len(reports) == 0 {
		return fmt.Errorf("nothing to check: pass report files, -dir, or -url")
	}
	var failures int
	for _, r := range reports {
		failures += len(r.Failures)
		if quiet {
			continue
		}
		status := "ok"
		if len(r.Failures) > 0 {
			status = fmt.Sprintf("%d failed", len(r.Failures))
		}
		fmt.Fprintf(out, "%-22s %-9s %10v wall  %12d branches  %14.0f branches/sec\n",
			r.Name, status, r.Metrics.Wall().Round(time.Microsecond), r.Metrics.Branches, r.Metrics.BranchesPerSec)
		for _, f := range r.Failures {
			fmt.Fprintf(out, "    failure [%s] %s: %s\n", f.Kind, f.Name, f.Error)
		}
		names := make([]string, 0, len(r.Skipped))
		for name := range r.Skipped {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(out, "    skipped %s: %s\n", name, r.Skipped[name])
		}
	}
	if !quiet {
		fmt.Fprintf(out, "%d report(s) valid\n", len(reports))
	}
	if failures > 0 {
		// The reports are well-formed, but they record a degraded run;
		// CI should notice that too.
		return fmt.Errorf("%d recorded failure(s) across %d report(s)", failures, len(reports))
	}
	return nil
}
