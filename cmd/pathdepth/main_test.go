package main

import (
	"testing"

	"repro/internal/obs"
)

func TestRunBenchmark(t *testing.T) {
	if err := run("compress", "test", "", 20000, 3, 16, obs.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "test", "", 20000, 3, 16, obs.Discard); err == nil {
		t.Error("missing source accepted")
	}
	if err := run("nonesuch", "test", "", 20000, 3, 16, obs.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
