package main

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func TestRunBenchmark(t *testing.T) {
	if err := run(context.Background(), "compress", "test", "", 20000, 3, 16, obs.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "test", "", 20000, 3, 16, obs.Discard); err == nil {
		t.Error("missing source accepted")
	}
	if err := run(context.Background(), "nonesuch", "test", "", 20000, 3, 16, obs.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
