// Pathdepth analyses how much path information each conditional branch of
// a workload needs (paper §5.3, after Evers et al.): it simulates ideal
// unbounded-table predictors at several path depths and reports, per
// benchmark, the distribution of "sufficient depth" over dynamic branch
// weight plus the worst deep-history branches.
//
//	pathdepth -bench gcc -n 200000
//	pathdepth -trace gcc.vlpt -top 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/runx"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name")
		input     = flag.String("input", "test", "input set: test or profile")
		tracePath = flag.String("trace", "", "trace file (alternative to -bench)")
		n         = flag.Int("n", 200000, "suite base trace length for -bench")
		top       = flag.Int("top", 5, "show the N branches needing the deepest paths")
		minExec   = flag.Int64("min", 32, "ignore branches executed fewer times")
		verbose   = flag.Bool("v", false, "narrate progress to stderr")
	)
	var pflags obs.ProfileFlags
	pflags.Register(flag.CommandLine)
	flag.Parse()
	stop, err := pflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathdepth:", err)
		os.Exit(1)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	err = run(ctx, *bench, *input, *tracePath, *n, *top, *minExec,
		obs.NewLogger(os.Stderr, *verbose))
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathdepth:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench, input, tracePath string, n, top int, minExec int64, log *obs.Logger) error {
	src, err := cliutil.Resolve(ctx, cliutil.SourceSpec{
		Bench: bench, Input: input, Records: n, TracePath: tracePath,
	})
	if err != nil {
		return err
	}
	log.Progressf("trace source ready")
	span := obs.StartSpan()
	rep, err := analysis.Analyze(src, analysis.Config{MinExecutions: minExec})
	if err != nil {
		return err
	}
	log.Progressf("ideal-predictor sweep done: %s", span.End())
	fmt.Printf("analysed %d static conditional branches over %d dynamic executions\n",
		len(rep.Branches), rep.TotalExecuted)

	depths, weight := rep.SufficientDepthHistogram()
	fmt.Println("\ndynamic weight by sufficient path depth:")
	for i, d := range depths {
		fmt.Printf("  depth %-2d %6.2f%%\n", d, weight[i])
	}

	means := rep.MeanAccuracyAt()
	fmt.Println("\nideal accuracy by depth:")
	for i, d := range depths {
		fmt.Printf("  depth %-2d %6.2f%%\n", d, 100*means[i])
	}

	if top > 0 && len(rep.Branches) > 0 {
		type deep struct {
			pc   string
			d    int
			exec int64
			gain float64
		}
		var deeps []deep
		for _, b := range rep.Branches {
			i := b.BestDepthIndex(depths, 0.01)
			deeps = append(deeps, deep{
				pc:   b.PC.String(),
				d:    depths[i],
				exec: b.Executed,
				gain: b.Accuracy(i) - b.Accuracy(0),
			})
		}
		sort.Slice(deeps, func(i, j int) bool {
			if deeps[i].d != deeps[j].d {
				return deeps[i].d > deeps[j].d
			}
			return deeps[i].exec > deeps[j].exec
		})
		if len(deeps) > top {
			deeps = deeps[:top]
		}
		fmt.Printf("\n%d deepest-history branches:\n", len(deeps))
		for _, d := range deeps {
			fmt.Printf("  %-10s needs depth %-2d (%d execs, +%.1f%% over depth 0)\n",
				d.pc, d.d, d.exec, 100*d.gain)
		}
	}
	return nil
}
