// Vlpprof runs the paper's two-step profiling heuristic (§3.5) on a
// workload's profile input and writes the resulting per-branch hash
// function numbers — the information a compiler would encode into branch
// instructions (§4.2) — as a JSON profile for cmd/vlpsim.
//
//	vlpprof -bench gcc -class cond -budget 16384 -o gcc.prof
//	vlpprof -bench gcc -class indirect -budget 2048 -candidates 3 -iters 7 -o gcc-ind.prof
//
// The -lengths flag restricts the candidate hash functions, modelling the
// cheaper implementation of §3.1:
//
//	vlpprof -bench gcc -class cond -budget 16384 -lengths 1,2,4,8,16,32 -o gcc.prof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/runx"
)

func main() {
	var (
		bench      = flag.String("bench", "", "benchmark name")
		tracePath  = flag.String("trace", "", "trace file (alternative to -bench)")
		n          = flag.Int("n", 250000, "suite base trace length for -bench")
		class      = flag.String("class", "cond", "branch class: cond or indirect")
		budget     = flag.Int("budget", 16*1024, "hardware budget in bytes of the target predictor table")
		candidates = flag.Int("candidates", 3, "candidate hash functions kept per branch (step 1)")
		iters      = flag.Int("iters", 7, "step 2 iterations")
		lengths    = flag.String("lengths", "", "comma-separated candidate path lengths (default all 1..32)")
		out        = flag.String("o", "", "output profile file (required)")
		verbose    = flag.Bool("v", false, "narrate progress to stderr")
	)
	var pflags obs.ProfileFlags
	pflags.Register(flag.CommandLine)
	flag.Parse()
	stop, err := pflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpprof:", err)
		os.Exit(1)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	err = run(ctx, *bench, *tracePath, *n, *class, *budget, *candidates, *iters, *lengths, *out,
		obs.NewLogger(os.Stderr, *verbose))
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpprof:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, bench, tracePath string, n int, class string, budget, candidates, iters int,
	lengthsCSV, out string, log *obs.Logger) error {
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	// The profiling pass always reads the PROFILE input set; using the
	// test input would let training data leak into the evaluation.
	src, err := cliutil.Resolve(ctx, cliutil.SourceSpec{
		Bench: bench, Input: "profile", Records: n, TracePath: tracePath,
	})
	if err != nil {
		return err
	}

	entryBits := 2
	indirect := false
	switch class {
	case "cond":
	case "indirect":
		entryBits, indirect = 32, true
	default:
		return fmt.Errorf("unknown class %q (want cond or indirect)", class)
	}
	k, err := bpred.Log2Entries(budget, entryBits)
	if err != nil {
		return err
	}

	cfg := profile.Config{TableBits: k, Candidates: candidates, Iterations: iters}
	if lengthsCSV != "" {
		for _, part := range strings.Split(lengthsCSV, ",") {
			l, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -lengths entry %q: %w", part, err)
			}
			cfg.Lengths = append(cfg.Lengths, l)
		}
	}

	log.Progressf("profiling %s branches (k=%d, %d candidates, %d iterations)",
		class, k, cfg.Candidates, cfg.Iterations)
	span := obs.StartSpan()
	var prof *profile.Profile
	var agg profile.Step1Result
	if indirect {
		prof, agg, err = profile.Indirect(src, cfg)
	} else {
		prof, agg, err = profile.Cond(src, cfg)
	}
	if err != nil {
		return err
	}
	log.Progressf("two-step heuristic done: %s", span.End())
	if err := prof.Save(out); err != nil {
		return err
	}

	fmt.Printf("profiled %d static branches over %d dynamic; default length %d\n",
		len(prof.Lengths), agg.Total, prof.Default)
	sel := prof.Selector()
	ls, counts := sel.LengthHistogram()
	fmt.Println("assigned length histogram:")
	for i, l := range ls {
		fmt.Printf("  L=%-2d %d branches\n", l, counts[i])
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
