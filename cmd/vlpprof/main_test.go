package main

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/profile"
)

func TestProfileCondAndIndirect(t *testing.T) {
	dir := t.TempDir()
	cond := filepath.Join(dir, "c.prof")
	if err := run(context.Background(), "compress", "", 20000, "cond", 4096, 3, 7, "", cond, obs.Discard); err != nil {
		t.Fatal(err)
	}
	p, err := profile.Load(cond)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "cond" || len(p.Lengths) == 0 {
		t.Errorf("profile malformed: %+v", p)
	}

	ind := filepath.Join(dir, "i.prof")
	if err := run(context.Background(), "perl", "", 20000, "indirect", 2048, 3, 7, "1,2,4,8", ind, obs.Discard); err != nil {
		t.Fatal(err)
	}
	pi, err := profile.Load(ind)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Kind != "indirect" {
		t.Errorf("Kind = %q", pi.Kind)
	}
	for _, l := range pi.Lengths {
		if l != 1 && l != 2 && l != 4 && l != 8 {
			t.Errorf("assigned length %d outside the restricted set", l)
		}
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "compress", "", 1000, "cond", 4096, 3, 7, "", "", obs.Discard); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run(context.Background(), "compress", "", 1000, "registers", 4096, 3, 7, "", filepath.Join(dir, "x"), obs.Discard); err == nil {
		t.Error("bad class accepted")
	}
	if err := run(context.Background(), "compress", "", 1000, "cond", 4096, 3, 7, "1,zz", filepath.Join(dir, "x"), obs.Discard); err == nil {
		t.Error("bad lengths accepted")
	}
	if err := run(context.Background(), "compress", "", 1000, "cond", 3000, 3, 7, "", filepath.Join(dir, "x"), obs.Discard); err == nil {
		t.Error("bad budget accepted")
	}
}
