// Vlpload is the load generator for the prediction service: it splits a
// workload trace into wire-format chunks and streams them at a running
// vlpserve from N concurrent clients, optionally paced to a target
// request rate, then reports throughput and latency percentiles.
//
// Replay a generated benchmark trace through a served session:
//
//	vlpload -url http://127.0.0.1:8080 -bench gcc -n 250000 \
//	    -pred gshare:budget=16KB -clients 1 -chunk 8192
//
// Drive an open-loop stress run and keep the JSON artifact:
//
//	vlpload -url http://127.0.0.1:8080 -trace gcc.vlpt -clients 16 \
//	    -rps 200 -json results/bench_vlpload.json
//
// With -clients 1 and no -rps the chunks arrive strictly in order, and
// the session's final misprediction rate is bit-identical to batch
// vlpsim over the same trace and spec — the property the serve-smoke CI
// stage asserts.
//
// -skip and -limit slice a window out of the trace, which is how a
// stream resumes against a restarted server with a -spill-dir: stream
// records [0,k) under one session, then [k,n) under the same session id
// — the create is idempotent and picks the hibernated state back up
// (scripts/snap_smoke.sh drives this across a real kill -9).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/cliutil"
	"repro/internal/factory"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/runx"
	"repro/internal/trace"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "base URL of the vlpserve instance")
		session = flag.String("session", "", "session id to create (empty lets the server assign one)")
		class   = flag.String("class", "cond", "branch class: cond or indirect")
		pred    = flag.String("pred", "gshare:budget=16KB",
			"predictor spec, e.g. gshare:budget=16KB; cond ("+strings.Join(factory.CondNames(), ", ")+
				"); indirect ("+strings.Join(factory.IndirectNames(), ", ")+")")
		bench     = flag.String("bench", "", "benchmark name (generates the trace locally)")
		input     = flag.String("input", "test", "input set for -bench: test or profile")
		n         = flag.Int("n", 250000, "suite base trace length for -bench")
		tracePath = flag.String("trace", "", "trace file (alternative to -bench)")
		skip      = flag.Int("skip", 0, "discard the first N trace records before streaming (the resume offset)")
		limit     = flag.Int("limit", 0, "stream at most N trace records after -skip (0 = all)")
		clients   = flag.Int("clients", 1, "concurrent client connections")
		rps       = flag.Float64("rps", 0, "open-loop target requests/sec across all clients (0 = closed loop)")
		chunk     = flag.Int("chunk", 65536, "records per request chunk")
		gz        = flag.Bool("gzip", false, "gzip request bodies")
		attempts  = flag.Int("attempts", 3, "attempts per chunk (429/503 and network failures retry)")
		chaosStr  = flag.String("chaos", "", "client-side fault injection spec, e.g. chaos:seed=7,latency=20ms@0.1,reset=0.02")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no deadline)")
		jsonPath  = flag.String("json", "", "write a bench report (repro-bench/v1 schema) to this file")
		verbose   = flag.Bool("v", false, "narrate progress to stderr")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, *verbose)

	ctx, cancelSignals := runx.WithSignals(context.Background())
	defer cancelSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var inj *chaos.Injector
	if *chaosStr != "" {
		spec, err := chaos.ParseSpec(*chaosStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vlpload:", err)
			os.Exit(2)
		}
		inj = chaos.New(spec)
	}
	cfg := loadgen.Config{
		BaseURL:      strings.TrimRight(*url, "/"),
		SessionID:    *session,
		Class:        *class,
		Spec:         *pred,
		Clients:      *clients,
		TargetRPS:    *rps,
		ChunkRecords: *chunk,
		Gzip:         *gz,
		Attempts:     *attempts,
		Log:          log,
	}
	if inj != nil {
		cfg.Transport = inj.Transport(nil)
	}
	err := run(ctx, cfg, *bench, *input, *n, *tracePath, *skip, *limit, *jsonPath, log)
	if inj != nil {
		fmt.Printf("chaos: injected %s\n", inj.CountsString())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg loadgen.Config, bench, input string, n int, tracePath string, skip, limit int, jsonPath string, log *obs.Logger) error {
	src, err := cliutil.Resolve(ctx, cliutil.SourceSpec{
		Bench: bench, Input: input, Records: n, TracePath: tracePath,
	})
	if err != nil {
		return err
	}
	var window trace.Source = src
	if skip > 0 {
		window = trace.NewSkip(window, skip)
	}
	if limit > 0 {
		window = trace.NewLimit(window, limit)
	}
	log.Progressf("trace source ready")

	span := obs.StartSpan()
	res, err := loadgen.Run(ctx, cfg, window)
	if err != nil {
		return err
	}
	metrics := span.End()

	fmt.Printf("session %s: %d/%d mispredicted (%.2f%%) over %d records\n",
		res.Session, res.Mispredicts, res.Branches, res.MissPercent, res.Records)
	fmt.Printf("load: %d requests (%d chunks, %d clients), %d retries (%d server-paced, %d transport), %d rejected, %d failed\n",
		res.Requests, res.Chunks, res.Clients, res.Retries, res.RetryAfterWaits, res.TransportRetries, res.Rejected, res.Failures)
	fmt.Printf("throughput: %.1f req/s over %v\n",
		res.AchievedRPS, time.Duration(res.WallNanos).Round(time.Millisecond))
	fmt.Printf("latency: p50 %v  p95 %v  p99 %v  max %v\n",
		time.Duration(res.Latency.P50Nanos).Round(time.Microsecond),
		time.Duration(res.Latency.P95Nanos).Round(time.Microsecond),
		time.Duration(res.Latency.P99Nanos).Round(time.Microsecond),
		time.Duration(res.Latency.MaxNanos).Round(time.Microsecond))

	if jsonPath != "" {
		rep := obs.NewReport("vlpload", "prediction service load run")
		rep.SetParam("url", cfg.BaseURL)
		rep.SetParam("class", cfg.Class)
		rep.SetParam("pred", cfg.Spec)
		rep.SetParam("clients", cfg.Clients)
		rep.SetParam("rps", cfg.TargetRPS)
		rep.SetParam("chunk", cfg.ChunkRecords)
		if tracePath != "" {
			rep.SetParam("trace", tracePath)
		} else {
			rep.SetParam("bench", bench)
			rep.SetParam("input", input)
			rep.SetParam("records", n)
		}
		rep.Metrics = metrics
		rep.Data = res
		if res.Failures > 0 {
			rep.AddFailure("chunks", obs.FailureError,
				fmt.Errorf("%d of %d chunks failed after retries", res.Failures, res.Requests))
		}
		if err := rep.Write(jsonPath); err != nil {
			return err
		}
		log.Progressf("wrote %s", jsonPath)
	}
	if res.Failures > 0 {
		return fmt.Errorf("%d of %d chunks failed", res.Failures, res.Requests)
	}
	return nil
}
