package main

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/serve"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunWritesReport replays a generated benchmark through a live
// handler and checks the JSON artifact is a valid bench report carrying
// the run's data.
func TestRunWritesReport(t *testing.T) {
	ts := testServer(t)
	jsonPath := filepath.Join(t.TempDir(), "bench_vlpload.json")
	cfg := loadgen.Config{
		BaseURL:      ts.URL,
		SessionID:    "cli",
		Class:        "cond",
		Spec:         "gshare:budget=16KB",
		Clients:      2,
		ChunkRecords: 4096,
	}
	if err := run(context.Background(), cfg, "gcc", "test", 20000, "", 0, 0, jsonPath, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadReport(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "vlpload" || len(rep.Failures) != 0 {
		t.Fatalf("report %q with %d failures", rep.Name, len(rep.Failures))
	}
	if rep.Params["pred"] != "gshare:budget=16KB" || rep.Params["bench"] != "gcc" {
		t.Fatalf("params %v missing run identity", rep.Params)
	}
}

func TestRunErrors(t *testing.T) {
	ts := testServer(t)
	ctx := context.Background()
	base := loadgen.Config{BaseURL: ts.URL, Class: "cond", Spec: "gshare:budget=16KB"}
	if err := run(ctx, base, "", "test", 0, "", 0, 0, "", nil); err == nil {
		t.Error("no trace source accepted")
	}
	if err := run(ctx, base, "no-such-bench", "test", 100, "", 0, 0, "", nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad := base
	bad.Spec = "nope:budget=1KB"
	if err := run(ctx, bad, "gcc", "test", 100, "", 0, 0, "", nil); err == nil {
		t.Error("bad spec accepted")
	}
	down := base
	down.BaseURL = "http://127.0.0.1:1"
	if err := run(ctx, down, "gcc", "test", 100, "", 0, 0, "", nil); err == nil {
		t.Error("unreachable server accepted")
	}
}
