// Paperrepro regenerates the paper's evaluation: every table and figure of
// §5 plus the repository's ablation studies, on the synthetic benchmark
// suite.
//
// Run everything at the default scale:
//
//	paperrepro
//
// Run one experiment at full scale and save the reports:
//
//	paperrepro -exp fig9 -base 1200000 -out results/
//
// Experiment IDs follow the paper's artifact names: table1, table2, fig5,
// fig6, fig7, fig8, table3, fig9, fig10, headline, plus ablation-*.
// -list prints them all.
//
// Fault tolerance: the suite run is designed to survive its parts. A
// panicking or failing experiment is recorded and the remaining
// experiments still run; -timeout bounds each experiment; Ctrl-C cancels
// the sweep cleanly (in-flight simulation jobs drain, the checkpoint is
// saved). With -tracedir, recorded benchmark traces are ingested up
// front with retry on transient I/O errors, and a missing or corrupt
// trace skips that benchmark — with the reason recorded in the report —
// instead of failing the suite. Progress checkpoints to
// <json>/manifest.json as each experiment completes, and -resume skips
// experiments whose bench reports are already present and valid, so an
// interrupted or partially failed run re-runs only what is missing.
// The process exits non-zero if any experiment failed, but only after
// running everything else.
//
// Observability: every experiment runs inside a measurement span, and
// -json <dir> (default results, "" to disable) writes one
// bench_<id>.json per experiment in the repro-bench/v1 schema — wall
// time, branches simulated, throughput, allocation — alongside the
// experiment's typed data, plus a bench_suite.json summary carrying the
// run's failures and skips. -cpuprofile/-memprofile/-exectrace profile
// the whole regeneration; -v narrates per-experiment progress.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/engine/pool"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runx"
)

// options carries every run parameter; flags parse straight into it.
type options struct {
	exp      string
	base     int
	profBase int
	out      string
	jsonDir  string
	traceDir string
	perCell  bool
	timeout  time.Duration
	resume   bool
	log      *obs.Logger
}

func main() {
	var opts options
	var list, verbose bool
	flag.StringVar(&opts.exp, "exp", "", "comma-separated experiment ids (default: all)")
	flag.IntVar(&opts.base, "base", 400000, "suite base trace length in records")
	flag.IntVar(&opts.profBase, "profbase", 0, "profile input length (default: same as -base)")
	flag.StringVar(&opts.out, "out", "", "also write each report to <out>/<id>.txt")
	flag.StringVar(&opts.jsonDir, "json", "results", "write bench_<id>.json reports to this directory (\"\" to disable)")
	flag.StringVar(&opts.traceDir, "tracedir", "", "ingest recorded test traces (<dir>/<bench>.vlpt) instead of generating them")
	flag.BoolVar(&opts.perCell, "percell", false, "replay experiment columns per cell (sequential oracle) instead of fused")
	flag.DurationVar(&opts.timeout, "timeout", 0, "per-experiment deadline (0 = none)")
	flag.BoolVar(&opts.resume, "resume", false, "skip experiments whose bench reports are already present and valid (needs -json)")
	flag.BoolVar(&list, "list", false, "list experiment ids and exit")
	flag.BoolVar(&verbose, "v", false, "narrate progress to stderr")
	workers := flag.Int("workers", 0, "bound every worker pool in the process (0 = CPU count)")
	var pflags obs.ProfileFlags
	pflags.Register(flag.CommandLine)
	flag.Parse()
	if list {
		listExperiments(os.Stdout)
		return
	}
	pool.SetCap(*workers)
	opts.log = obs.NewLogger(os.Stderr, verbose)
	stop, err := pflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	err = run(ctx, opts)
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

// listExperiments prints the registry — one "id  title" line per
// experiment, in presentation order — for the -list flag.
func listExperiments(w io.Writer) {
	for _, e := range experiments.Registry() {
		fmt.Fprintf(w, "%-22s %s\n", e.ID, e.Title)
	}
}

// classify maps an experiment error to its failure kind.
func classify(err error) obs.FailureKind {
	var pe *runx.PanicError
	switch {
	case errors.As(err, &pe):
		return obs.FailurePanic
	case errors.Is(err, context.DeadlineExceeded):
		return obs.FailureTimeout
	case errors.Is(err, context.Canceled):
		return obs.FailureCanceled
	default:
		return obs.FailureError
	}
}

// validReport is the resume gate's output validation: the bench report
// must still read back clean (the same validation cmd/obscheck
// applies), so a deleted or corrupted report file re-runs.
func validReport(path string) error {
	_, err := obs.ReadReport(path)
	return err
}

func run(ctx context.Context, opts options) error {
	entries, err := experiments.Select(opts.exp)
	if err != nil {
		return err
	}
	if opts.out != "" {
		if err := os.MkdirAll(opts.out, 0o755); err != nil {
			return err
		}
	}
	if opts.resume && opts.jsonDir == "" {
		return fmt.Errorf("-resume needs -json to know where prior results live")
	}

	// The checkpoint manifest lives next to the bench reports. A prior
	// manifest is only consulted under -resume; otherwise the run
	// starts a fresh one (stale entries for experiments not in this
	// run's list are preserved so partial -exp runs compose).
	var manifest *runx.Manifest
	var manifestPath string
	if opts.jsonDir != "" {
		manifestPath = runx.ManifestPath(opts.jsonDir)
		if prior, err := runx.LoadManifest(manifestPath); err == nil {
			manifest = prior
		} else {
			manifest = runx.NewManifest()
		}
	}
	checkpoint := func() error {
		if manifest == nil {
			return nil
		}
		return manifest.Save(manifestPath)
	}

	suite := experiments.NewSuite(experiments.Config{
		BaseRecords: opts.base, ProfileRecords: opts.profBase, TraceDir: opts.traceDir,
		PerCell: opts.perCell,
	})
	summary := obs.NewReport("suite", "paperrepro suite run")
	summary.SetParam("base_records", opts.base)
	if opts.traceDir != "" {
		summary.SetParam("trace_dir", opts.traceDir)
	}

	// Harden the input boundary first: with -tracedir, every
	// benchmark's recorded trace is validated (and retried through
	// transient I/O errors) before any experiment runs. A bad trace
	// skips its benchmark — recorded here — rather than surfacing as a
	// confusing mid-experiment failure.
	skipped, err := suite.IngestTraces(ctx)
	if err != nil {
		return fmt.Errorf("trace ingestion: %w", err)
	}
	for bench, reason := range skipped {
		opts.log.Progressf("skipping benchmark %s: %s", bench, reason)
		summary.AddSkip("bench:"+bench, reason)
	}

	span := obs.StartSpan()
	var failed []string
	for i, e := range entries {
		if err := ctx.Err(); err != nil {
			// Interrupted: checkpoint what completed and stop cleanly
			// without discarding the finished experiments' results.
			summary.AddFailure("suite", obs.FailureCanceled, err)
			for _, rest := range entries[i:] {
				summary.AddSkip(rest.ID, "canceled before start")
			}
			break
		}
		if opts.resume && manifest.Satisfied(e.ID, validReport) {
			opts.log.Progressf("experiment %d/%d: %s already complete, skipping", i+1, len(entries), e.ID)
			summary.AddSkip(e.ID, "resumed: valid report already on disk")
			continue
		}
		opts.log.Progressf("experiment %d/%d: %s", i+1, len(entries), e.ID)

		expCtx := ctx
		var cancelTimeout context.CancelFunc
		if opts.timeout > 0 {
			expCtx, cancelTimeout = context.WithTimeout(ctx, opts.timeout)
		}
		start := time.Now()
		rep, err := e.RunMeasured(expCtx, suite)
		if cancelTimeout != nil {
			cancelTimeout()
		}

		if err != nil {
			// The experiment failed alone: record it, mark the
			// checkpoint, and keep going. The failure still fails the
			// process at the end.
			kind := classify(err)
			failed = append(failed, e.ID)
			summary.AddFailure(e.ID, kind, err)
			fmt.Printf("===== %s FAILED (%s): %v\n", e.ID, kind, err)
			if manifest != nil {
				manifest.Set(runx.ManifestEntry{
					ID: e.ID, Status: runx.StatusFailed, Error: err.Error(),
					WallNanos: time.Since(start).Nanoseconds(),
				})
				if err := checkpoint(); err != nil {
					return err
				}
			}
			continue
		}

		fmt.Printf("===== %s (%s)\n", rep.Title, rep.Metrics)
		fmt.Println(rep.Text)
		if opts.out != "" {
			if _, err := experiments.WriteText(opts.out, rep.ID, rep.Title, rep.Text); err != nil {
				return err
			}
		}
		var benchPath string
		if opts.jsonDir != "" {
			benchPath, err = rep.WriteBench(opts.jsonDir, suite.Cfg)
			if err != nil {
				return err
			}
			opts.log.Progressf("wrote %s", benchPath)
		}
		if manifest != nil {
			entry := runx.ManifestEntry{
				ID: e.ID, Status: runx.StatusOK, Output: benchPath,
				WallNanos: rep.Metrics.WallNanos,
			}
			// Stamp the report's checksum so a resumed run quarantines a
			// torn or tampered file instead of trusting it. Best-effort:
			// an unreadable file just leaves the legacy empty checksum.
			if benchPath != "" {
				if sum, err := runx.FileChecksum(benchPath); err == nil {
					entry.Checksum = sum
				}
			}
			manifest.Set(entry)
			if err := checkpoint(); err != nil {
				return err
			}
		}
	}
	summary.Metrics = span.End()

	// The engine's scheduling arithmetic: how many cells the experiments
	// submitted, how many actually replayed, and how many were served
	// from a column another experiment had already computed.
	ec := suite.Engine().Counters()
	summary.SetParam("engine_cells_submitted", ec.Submitted)
	summary.SetParam("engine_cells_executed", ec.Executed)
	summary.SetParam("engine_cells_deduped", ec.Deduped)
	if ec.Submitted > 0 {
		opts.log.Progressf("engine: %d cell(s) submitted, %d executed, %d served by dedup",
			ec.Submitted, ec.Executed, ec.Deduped)
	}

	if opts.jsonDir != "" {
		path, err := summary.WriteBench(opts.jsonDir)
		if err != nil {
			return err
		}
		opts.log.Progressf("wrote %s", path)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("interrupted: %w", err)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d experiment(s) failed: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}
