// Paperrepro regenerates the paper's evaluation: every table and figure of
// §5 plus the repository's ablation studies, on the synthetic benchmark
// suite.
//
// Run everything at the default scale:
//
//	paperrepro
//
// Run one experiment at full scale and save the reports:
//
//	paperrepro -exp fig9 -base 1200000 -out results/
//
// Experiment IDs follow the paper's artifact names: table1, table2, fig5,
// fig6, fig7, fig8, table3, fig9, fig10, headline, plus ablation-*.
// -list prints them all.
//
// Observability: every experiment runs inside a measurement span, and
// -json <dir> (default results, "" to disable) writes one
// bench_<id>.json per experiment in the repro-bench/v1 schema — wall
// time, branches simulated, throughput, allocation — alongside the
// experiment's typed data. -cpuprofile/-memprofile/-exectrace profile
// the whole regeneration; -v narrates per-experiment progress.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		base    = flag.Int("base", 400000, "suite base trace length in records")
		prof    = flag.Int("profbase", 0, "profile input length (default: same as -base)")
		out     = flag.String("out", "", "also write each report to <out>/<id>.txt")
		jsonDir = flag.String("json", "results", "write bench_<id>.json reports to this directory (\"\" to disable)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		verbose = flag.Bool("v", false, "narrate progress to stderr")
	)
	var pflags obs.ProfileFlags
	pflags.Register(flag.CommandLine)
	flag.Parse()
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	stop, err := pflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	err = run(*exp, *base, *prof, *out, *jsonDir, obs.NewLogger(os.Stderr, *verbose))
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(exp string, base, profBase int, out, jsonDir string, log *obs.Logger) error {
	var entries []experiments.Entry
	if exp == "" {
		entries = experiments.Registry()
	} else {
		for _, id := range strings.Split(exp, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			entries = append(entries, e)
		}
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}

	suite := experiments.NewSuite(experiments.Config{BaseRecords: base, ProfileRecords: profBase})
	for i, e := range entries {
		log.Progressf("experiment %d/%d: %s", i+1, len(entries), e.ID)
		rep, err := e.RunMeasured(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("===== %s (%s)\n", rep.Title, rep.Metrics)
		fmt.Println(rep.Text)
		if out != "" {
			path := filepath.Join(out, rep.ID+".txt")
			content := rep.Title + "\n\n" + rep.Text
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
		}
		if jsonDir != "" {
			path, err := rep.WriteBench(jsonDir, suite.Cfg)
			if err != nil {
				return err
			}
			log.Progressf("wrote %s", path)
		}
	}
	return nil
}
