// Paperrepro regenerates the paper's evaluation: every table and figure of
// §5 plus the repository's ablation studies, on the synthetic benchmark
// suite.
//
// Run everything at the default scale:
//
//	paperrepro
//
// Run one experiment at full scale and save the reports:
//
//	paperrepro -exp fig9 -base 1200000 -out results/
//
// Experiment IDs follow the paper's artifact names: table1, table2, fig5,
// fig6, fig7, fig8, table3, fig9, fig10, headline, plus ablation-*.
// -list prints them all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		base = flag.Int("base", 400000, "suite base trace length in records")
		prof = flag.Int("profbase", 0, "profile input length (default: same as -base)")
		out  = flag.String("out", "", "also write each report to <out>/<id>.txt")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := run(*exp, *base, *prof, *out); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(exp string, base, profBase int, out string) error {
	var entries []experiments.Entry
	if exp == "" {
		entries = experiments.Registry()
	} else {
		for _, id := range strings.Split(exp, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			entries = append(entries, e)
		}
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}

	suite := experiments.NewSuite(experiments.Config{BaseRecords: base, ProfileRecords: profBase})
	for _, e := range entries {
		start := time.Now()
		rep, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("===== %s (%s)\n", rep.Title, time.Since(start).Round(time.Millisecond))
		fmt.Println(rep.Text)
		if out != "" {
			path := filepath.Join(out, rep.ID+".txt")
			content := rep.Title + "\n\n" + rep.Text
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
