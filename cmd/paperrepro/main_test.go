package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runx"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testOpts returns the small-scale defaults every test starts from.
func testOpts(jsonDir string) options {
	return options{base: 20000, jsonDir: jsonDir, log: obs.Discard}
}

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(filepath.Join(dir, "results"))
	opts.exp = "table1"
	opts.out = dir
	if err := run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gcc") {
		t.Error("report missing benchmark rows")
	}
	rep, err := obs.ReadReport(obs.BenchPath(opts.jsonDir, "table1"))
	if err != nil {
		t.Fatal(err)
	}
	// table1 is a pure workload summary (no predictor runs), so only
	// wall time is guaranteed non-zero; branch counts are covered by
	// the headline test below.
	if rep.Name != "table1" || rep.Metrics.WallNanos <= 0 {
		t.Errorf("bench report incomplete: %+v", rep.Metrics)
	}
	// The checkpoint manifest records the success and points at the
	// bench report.
	m, err := runx.LoadManifest(runx.ManifestPath(opts.jsonDir))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := m.Get("table1")
	if !ok || e.Status != runx.StatusOK || e.Output == "" {
		t.Errorf("manifest entry incomplete: %+v (present=%v)", e, ok)
	}
}

func TestRunMultipleIDs(t *testing.T) {
	opts := testOpts(t.TempDir())
	opts.exp = "ablation-ras, headline"
	opts.profBase = 20000
	if err := run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	reports, err := obs.GlobReports(opts.jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 { // two experiments + the suite summary
		t.Errorf("got %d bench reports, want 3", len(reports))
	}
	for _, rep := range reports {
		if rep.Name == "headline" && rep.Metrics.Branches <= 0 {
			t.Errorf("headline simulated no branches: %+v", rep.Metrics)
		}
		if len(rep.Failures) > 0 {
			t.Errorf("%s records failures on a clean run: %+v", rep.Name, rep.Failures)
		}
	}
}

func TestRunJSONDisabled(t *testing.T) {
	opts := testOpts("")
	opts.exp = "ablation-ras"
	if err := run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
}

// TestListExperiments pins the -list output shape: one line per
// registry entry, each leading with its id.
func TestListExperiments(t *testing.T) {
	var buf strings.Builder
	listExperiments(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	reg := experiments.Registry()
	if len(lines) != len(reg) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(reg))
	}
	for i, e := range reg {
		if !strings.HasPrefix(lines[i], e.ID) || !strings.Contains(lines[i], e.Title) {
			t.Errorf("line %d = %q, want id %s and its title", i, lines[i], e.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	opts := testOpts("")
	opts.exp = "figure99"
	if err := run(context.Background(), opts); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// writeTraceDir materialises each benchmark's recorded test trace and
// corrupts the named one, returning the directory.
func writeTraceDir(t *testing.T, corrupt string) string {
	t.Helper()
	dir := t.TempDir()
	for _, b := range workload.All() {
		path := filepath.Join(dir, b.Name()+".vlpt")
		if b.Name() == corrupt {
			if err := os.WriteFile(path, []byte("this is not a trace file"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := trace.WriteFile(path, b.TestSource(20000)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestRunSurvivesFaults is the acceptance scenario: one corrupted
// benchmark trace plus one panicking and one erroring experiment. The
// run must complete the healthy experiment, record every failure and
// skip in the suite report, checkpoint all of it, and still return an
// error.
func TestRunSurvivesFaults(t *testing.T) {
	// Corrupt a benchmark the healthy experiment can live without
	// (ablation-ras sweeps all benchmarks; gcc must stay intact).
	var corrupt string
	for _, b := range workload.All() {
		if b.Name() != "gcc" {
			corrupt = b.Name()
			break
		}
	}
	opts := testOpts(t.TempDir())
	opts.exp = "ablation-ras,selftest-panic,selftest-fail"
	opts.traceDir = writeTraceDir(t, corrupt)
	err := run(context.Background(), opts)
	if err == nil {
		t.Fatal("run with injected faults returned nil error")
	}
	if !strings.Contains(err.Error(), "2 experiment(s) failed") {
		t.Errorf("error does not count both failures: %v", err)
	}

	// The healthy experiment still produced its report.
	if _, err := obs.ReadReport(obs.BenchPath(opts.jsonDir, "ablation-ras")); err != nil {
		t.Errorf("surviving experiment has no valid report: %v", err)
	}

	// The suite summary records both failures with their kinds, and the
	// corrupt trace's skip.
	summary, err := obs.ReadReport(obs.BenchPath(opts.jsonDir, "suite"))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]obs.FailureKind{}
	for _, f := range summary.Failures {
		kinds[f.Name] = f.Kind
	}
	if kinds["selftest-panic"] != obs.FailurePanic {
		t.Errorf("selftest-panic kind = %q, want panic (failures: %+v)", kinds["selftest-panic"], summary.Failures)
	}
	if kinds["selftest-fail"] != obs.FailureError {
		t.Errorf("selftest-fail kind = %q, want error (failures: %+v)", kinds["selftest-fail"], summary.Failures)
	}
	reason, ok := summary.Skipped["bench:"+corrupt]
	if !ok || !strings.Contains(reason, "corrupt") {
		t.Errorf("corrupt benchmark %s not recorded as skipped: %q (skipped: %v)", corrupt, reason, summary.Skipped)
	}

	// The manifest mirrors the outcome per experiment.
	m, err := runx.LoadManifest(runx.ManifestPath(opts.jsonDir))
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]runx.Status{
		"ablation-ras":   runx.StatusOK,
		"selftest-panic": runx.StatusFailed,
		"selftest-fail":  runx.StatusFailed,
	} {
		e, ok := m.Get(id)
		if !ok || e.Status != want {
			t.Errorf("manifest[%s] = %+v (present=%v), want status %s", id, e, ok, want)
		}
	}
}

// TestRunTimeout bounds a hanging experiment with -timeout and checks
// it is classified as a timeout while later experiments still run.
func TestRunTimeout(t *testing.T) {
	opts := testOpts(t.TempDir())
	// The deadline applies per experiment; selftest-fail returns
	// instantly, so only the hang can time out regardless of machine
	// speed, and its failure record proves the suite kept going.
	opts.exp = "selftest-hang,selftest-fail"
	opts.timeout = 100 * time.Millisecond
	err := run(context.Background(), opts)
	if err == nil {
		t.Fatal("hanging experiment did not fail the run")
	}
	summary, rerr := obs.ReadReport(obs.BenchPath(opts.jsonDir, "suite"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	kinds := map[string]obs.FailureKind{}
	for _, f := range summary.Failures {
		kinds[f.Name] = f.Kind
	}
	if kinds["selftest-hang"] != obs.FailureTimeout {
		t.Errorf("selftest-hang kind = %q, want timeout (failures: %+v)", kinds["selftest-hang"], summary.Failures)
	}
	// The experiment after the bounded hang still ran.
	if kinds["selftest-fail"] != obs.FailureError {
		t.Errorf("experiment after the timeout did not run (failures: %+v)", summary.Failures)
	}
}

// TestRunResume runs a partially failing suite, then resumes: the
// completed experiment must be skipped (its report untouched) and only
// the failed one re-run.
func TestRunResume(t *testing.T) {
	opts := testOpts(t.TempDir())
	opts.exp = "ablation-ras,selftest-fail"
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("first run should report the injected failure")
	}
	benchPath := obs.BenchPath(opts.jsonDir, "ablation-ras")
	before, err := os.Stat(benchPath)
	if err != nil {
		t.Fatal(err)
	}

	opts.resume = true
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("resumed run should still report the injected failure")
	}
	summary, err := obs.ReadReport(obs.BenchPath(opts.jsonDir, "suite"))
	if err != nil {
		t.Fatal(err)
	}
	if reason, ok := summary.Skipped["ablation-ras"]; !ok || !strings.Contains(reason, "resumed") {
		t.Errorf("completed experiment was not resumed: skipped=%v", summary.Skipped)
	}
	after, err := os.Stat(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("resume re-ran the already-completed experiment")
	}

	// Deleting the completed report invalidates the checkpoint: resume
	// must re-run it.
	if err := os.Remove(benchPath); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("third run should still report the injected failure")
	}
	if _, err := obs.ReadReport(benchPath); err != nil {
		t.Errorf("resume did not regenerate the deleted report: %v", err)
	}
}

// TestRunResumeNeedsJSON rejects -resume without a results directory.
func TestRunResumeNeedsJSON(t *testing.T) {
	opts := testOpts("")
	opts.exp = "table1"
	opts.resume = true
	if err := run(context.Background(), opts); err == nil {
		t.Error("-resume without -json accepted")
	}
}

// TestRunCanceled checks a pre-canceled context stops before any
// experiment and reports the interruption.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := testOpts(t.TempDir())
	opts.exp = "table1"
	err := run(ctx, opts)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("canceled run returned %v, want interrupted error", err)
	}
	summary, rerr := obs.ReadReport(obs.BenchPath(opts.jsonDir, "suite"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if reason, ok := summary.Skipped["table1"]; !ok || !strings.Contains(reason, "canceled") {
		t.Errorf("unstarted experiment not recorded: skipped=%v", summary.Skipped)
	}
}
