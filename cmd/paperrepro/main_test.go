package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run("table1", 20000, 0, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gcc") {
		t.Error("report missing benchmark rows")
	}
}

func TestRunMultipleIDs(t *testing.T) {
	if err := run("ablation-ras, headline", 20000, 20000, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run("figure99", 20000, 0, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}
