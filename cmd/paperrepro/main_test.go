package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	jsonDir := filepath.Join(dir, "results")
	if err := run("table1", 20000, 0, dir, jsonDir, obs.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gcc") {
		t.Error("report missing benchmark rows")
	}
	rep, err := obs.ReadReport(obs.BenchPath(jsonDir, "table1"))
	if err != nil {
		t.Fatal(err)
	}
	// table1 is a pure workload summary (no predictor runs), so only
	// wall time is guaranteed non-zero; branch counts are covered by
	// the headline test below.
	if rep.Name != "table1" || rep.Metrics.WallNanos <= 0 {
		t.Errorf("bench report incomplete: %+v", rep.Metrics)
	}
}

func TestRunMultipleIDs(t *testing.T) {
	jsonDir := t.TempDir()
	if err := run("ablation-ras, headline", 20000, 20000, "", jsonDir, obs.Discard); err != nil {
		t.Fatal(err)
	}
	reports, err := obs.GlobReports(jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Errorf("got %d bench reports, want 2", len(reports))
	}
	for _, rep := range reports {
		if rep.Name == "headline" && rep.Metrics.Branches <= 0 {
			t.Errorf("headline simulated no branches: %+v", rep.Metrics)
		}
	}
}

func TestRunJSONDisabled(t *testing.T) {
	if err := run("ablation-ras", 20000, 0, "", "", obs.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run("figure99", 20000, 0, "", "", obs.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}
