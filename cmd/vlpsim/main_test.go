package main

import (
	"path/filepath"
	"testing"

	"repro/internal/profile"
)

func TestRunCondPredictors(t *testing.T) {
	for _, pred := range []string{"gshare", "bimodal", "flp", "dynamic", "agree", "bimode"} {
		if err := run("compress", "test", "", 20000, "cond", pred, 4096, 0, "", false, false, 0); err != nil {
			t.Errorf("%s: %v", pred, err)
		}
	}
}

func TestRunIndirectPredictors(t *testing.T) {
	for _, pred := range []string{"btb", "pattern", "path", "cascaded", "flp"} {
		if err := run("perl", "test", "", 20000, "indirect", pred, 2048, 0, "", false, false, 2); err != nil {
			t.Errorf("%s: %v", pred, err)
		}
	}
}

func TestRunVLPWithProfile(t *testing.T) {
	prof := &profile.Profile{Kind: "cond", TableBits: 14, Default: 2}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := run("compress", "test", "", 20000, "cond", "vlp", 4096, 0, path, false, false, 0); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("compress", "test", "", 20000, "registers", "gshare", 4096, 0, "", false, false, 0); err == nil {
		t.Error("bad class accepted")
	}
	if err := run("compress", "test", "", 20000, "cond", "nonesuch", 4096, 0, "", false, false, 0); err == nil {
		t.Error("bad predictor accepted")
	}
	if err := run("", "test", "", 20000, "cond", "gshare", 4096, 0, "", false, false, 0); err == nil {
		t.Error("missing source accepted")
	}
	if err := run("compress", "test", "", 20000, "cond", "vlp", 4096, 0, "/no/such.prof", false, false, 0); err == nil {
		t.Error("missing profile accepted")
	}
}
