package main

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/profile"
)

func testConfig() config {
	return config{
		bench:  "compress",
		input:  "test",
		n:      20000,
		class:  "cond",
		pred:   "gshare",
		budget: 4096,
	}
}

func TestRunCondPredictors(t *testing.T) {
	for _, pred := range []string{"gshare", "bimodal", "flp", "dynamic", "agree", "bimode"} {
		cfg := testConfig()
		cfg.pred = pred
		if err := run(context.Background(), cfg); err != nil {
			t.Errorf("%s: %v", pred, err)
		}
	}
}

func TestRunIndirectPredictors(t *testing.T) {
	for _, pred := range []string{"btb", "pattern", "path", "cascaded", "flp"} {
		cfg := testConfig()
		cfg.bench, cfg.class, cfg.pred, cfg.budget, cfg.topMiss = "perl", "indirect", pred, 2048, 2
		if err := run(context.Background(), cfg); err != nil {
			t.Errorf("%s: %v", pred, err)
		}
	}
}

func TestRunSpecStringForm(t *testing.T) {
	cfg := testConfig()
	cfg.pred = "gshare:budget=4KB"
	cfg.budget = 0 // the spec supplies it; the flag default must not be needed
	if err := run(context.Background(), cfg); err != nil {
		t.Error(err)
	}
	cfg = testConfig()
	cfg.pred = "flp:budget=4KB,fixed=6,store-returns"
	if err := run(context.Background(), cfg); err != nil {
		t.Error(err)
	}
}

func TestRunVLPWithProfile(t *testing.T) {
	prof := &profile.Profile{Kind: "cond", TableBits: 14, Default: 2}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	// Profile via flag.
	cfg := testConfig()
	cfg.pred, cfg.profPath = "vlp", path
	if err := run(context.Background(), cfg); err != nil {
		t.Error(err)
	}
	// Profile via spec key.
	cfg = testConfig()
	cfg.pred = "vlp:budget=4KB,profile=" + path
	if err := run(context.Background(), cfg); err != nil {
		t.Error(err)
	}
}

func TestRunWritesJSONReport(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "out.json")
	cfg := testConfig()
	cfg.jsonPath = jsonPath
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadReport(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "vlpsim" {
		t.Errorf("report name = %q", rep.Name)
	}
	if rep.Params["pred"] != "gshare:budget=4KB" {
		t.Errorf("canonical pred spec = %q", rep.Params["pred"])
	}
	if rep.Metrics.WallNanos <= 0 || rep.Metrics.Branches <= 0 || rep.Metrics.BranchesPerSec <= 0 {
		t.Errorf("metrics incomplete: %+v", rep.Metrics)
	}
	data, ok := rep.Data.(map[string]any)
	if !ok {
		t.Fatalf("data payload type %T", rep.Data)
	}
	if _, ok := data["miss_rate"]; !ok {
		t.Error("data missing miss_rate")
	}
	if data["predictor"] == "" {
		t.Error("data missing predictor name")
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string]func(*config){
		"bad class":           func(c *config) { c.class = "registers" },
		"bad predictor":       func(c *config) { c.pred = "nonesuch" },
		"bad spec syntax":     func(c *config) { c.pred = "gshare:budget=lots" },
		"missing source":      func(c *config) { c.bench = "" },
		"missing profile":     func(c *config) { c.pred, c.profPath = "vlp", "/no/such.prof" },
		"vlp without profile": func(c *config) { c.pred = "vlp" },
		// /dev/null is a file, so MkdirAll on it must fail even as root.
		"unwritable json": func(c *config) { c.jsonPath = "/dev/null/out.json" },
	}
	for name, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if err := run(context.Background(), cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
