// Vlpsim runs one branch predictor over one workload and reports its
// misprediction rate — the single-configuration counterpart of
// cmd/paperrepro.
//
// The predictor is named by the factory's spec grammar, either as a bare
// scheme name configured with flags or as one self-contained string:
//
//	vlpsim -bench gcc -class cond -pred gshare -budget 16384
//	vlpsim -bench gcc -class cond -pred gshare:budget=16KB
//
// Variable length path prediction with a profile from cmd/vlpprof:
//
//	vlpprof -bench gcc -class cond -budget 16384 -o gcc.prof
//	vlpsim  -bench gcc -class cond -pred vlp:budget=16KB,profile=gcc.prof
//
// Indirect prediction from a trace file:
//
//	vlpsim -trace gcc.vlpt -class indirect -pred path:budget=2KB
//
// Observability: -json writes a bench report (misprediction rate, wall
// time, branches/sec, allocation) in the repository's stable schema;
// -cpuprofile/-memprofile/-exectrace capture pprof/runtime-trace data;
// -v narrates progress to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bpred"
	"repro/internal/cliutil"
	"repro/internal/factory"
	"repro/internal/obs"
	"repro/internal/runx"
	"repro/internal/sim"
)

// config carries every run parameter; flags parse straight into it.
type config struct {
	bench     string
	input     string
	tracePath string
	n         int
	class     string
	pred      string
	budget    int
	length    int
	profPath  string
	returns   bool
	norotate  bool
	topMiss   int
	jsonPath  string
	timeout   time.Duration
	log       *obs.Logger
}

func main() {
	var cfg config
	var verbose bool
	var prof obs.ProfileFlags
	flag.StringVar(&cfg.bench, "bench", "", "benchmark name")
	flag.StringVar(&cfg.input, "input", "test", "input set: test or profile")
	flag.StringVar(&cfg.tracePath, "trace", "", "trace file (alternative to -bench)")
	flag.IntVar(&cfg.n, "n", 250000, "suite base trace length for -bench")
	flag.StringVar(&cfg.class, "class", "cond", "branch class: cond or indirect")
	flag.StringVar(&cfg.pred, "pred", "gshare",
		"predictor spec, e.g. gshare:budget=16KB; cond ("+strings.Join(factory.CondNames(), ", ")+
			"); indirect ("+strings.Join(factory.IndirectNames(), ", ")+")")
	flag.IntVar(&cfg.budget, "budget", 16*1024, "hardware budget in bytes (default when the spec has no budget=)")
	flag.IntVar(&cfg.length, "length", 0, "fixed path length for -pred flp")
	flag.StringVar(&cfg.profPath, "profile", "", "profile file for -pred vlp (from vlpprof)")
	flag.BoolVar(&cfg.returns, "store-returns", false, "insert return targets into the THB (paper §3.2 ablation)")
	flag.BoolVar(&cfg.norotate, "no-rotation", false, "disable the per-depth hash rotation (paper §3.3 ablation)")
	flag.IntVar(&cfg.topMiss, "top", 0, "also report the N worst static branches")
	flag.StringVar(&cfg.jsonPath, "json", "", "write a bench report (repro-bench/v1 schema) to this file")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the run after this long (0 = no deadline); Ctrl-C cancels cleanly either way")
	flag.BoolVar(&verbose, "v", false, "narrate progress to stderr")
	prof.Register(flag.CommandLine)
	flag.Parse()
	cfg.log = obs.NewLogger(os.Stderr, verbose)

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpsim:", err)
		os.Exit(1)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	if cfg.timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, cfg.timeout)
		defer cancelTimeout()
	}
	err = run(ctx, cfg)
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpsim:", err)
		os.Exit(1)
	}
}

// resolveSpec merges the -pred spec string with the individual flags:
// values inside the spec win, flags fill whatever the spec left unset.
func resolveSpec(cfg config) (factory.Spec, error) {
	spec, err := factory.ParseSpec(cfg.pred)
	if err != nil {
		return factory.Spec{}, err
	}
	if spec.BudgetBytes == 0 {
		spec.BudgetBytes = cfg.budget
	}
	if spec.FixedLength == 0 {
		spec.FixedLength = cfg.length
	}
	if spec.ProfilePath == "" {
		spec.ProfilePath = cfg.profPath
	}
	spec.Options.StoreReturns = spec.Options.StoreReturns || cfg.returns
	spec.Options.NoRotation = spec.Options.NoRotation || cfg.norotate
	return spec, nil
}

// simData is the Data payload of vlpsim's bench report.
type simData struct {
	Predictor   string  `json:"predictor"`
	SizeBytes   int     `json:"size_bytes"`
	Branches    int64   `json:"branches"`
	Mispredicts int64   `json:"mispredicts"`
	MissRate    float64 `json:"miss_rate"`
	MissPercent float64 `json:"miss_percent"`
}

func run(ctx context.Context, cfg config) error {
	src, err := cliutil.Resolve(ctx, cliutil.SourceSpec{
		Bench: cfg.bench, Input: cfg.input, Records: cfg.n, TracePath: cfg.tracePath,
	})
	if err != nil {
		return err
	}
	cfg.log.Progressf("trace source ready")
	spec, err := resolveSpec(cfg)
	if err != nil {
		return err
	}

	var res sim.Result
	var p bpred.Predictor
	switch cfg.class {
	case "cond":
		cp, err := spec.Cond()
		if err != nil {
			return err
		}
		p = cp
		cfg.log.Progressf("built %s (%d bytes)", cp.Name(), cp.SizeBytes())
		res = sim.RunCond(ctx, cp, src, sim.Options{PerPC: cfg.topMiss > 0})
	case "indirect":
		ip, err := spec.Indirect()
		if err != nil {
			return err
		}
		p = ip
		cfg.log.Progressf("built %s (%d bytes)", ip.Name(), ip.SizeBytes())
		res = sim.RunIndirect(ctx, ip, src, sim.Options{PerPC: cfg.topMiss > 0})
	default:
		return fmt.Errorf("unknown class %q (want cond or indirect)", cfg.class)
	}
	if res.Err != nil {
		// A canceled or truncated run measured only part of the trace;
		// refuse to report the partial counts as a result.
		return fmt.Errorf("run aborted after %d branches: %w", res.Branches, res.Err)
	}
	cfg.log.Progressf("run finished: %s", res.Metrics)

	fmt.Println(res.String())
	fmt.Printf("cost: %s\n", res.Metrics)
	if cfg.topMiss > 0 {
		fmt.Printf("worst %d static branches:\n", cfg.topMiss)
		for _, pc := range res.WorstPCs(cfg.topMiss) {
			st := res.PerPC[pc]
			fmt.Printf("  %v  %d/%d mispredicted (%.1f%%)\n",
				pc, st.Mispredicts, st.Branches, 100*float64(st.Mispredicts)/float64(st.Branches))
		}
	}

	if cfg.jsonPath != "" {
		rep := obs.NewReport("vlpsim", "single predictor run")
		rep.SetParam("class", cfg.class)
		rep.SetParam("pred", spec.String())
		if cfg.tracePath != "" {
			rep.SetParam("trace", cfg.tracePath)
		} else {
			rep.SetParam("bench", cfg.bench)
			rep.SetParam("input", cfg.input)
			rep.SetParam("records", cfg.n)
		}
		rep.Metrics = res.Metrics
		rep.Data = simData{
			Predictor:   res.Predictor,
			SizeBytes:   p.SizeBytes(),
			Branches:    res.Branches,
			Mispredicts: res.Mispredicts,
			MissRate:    res.Rate(),
			MissPercent: res.Percent(),
		}
		if err := rep.Write(cfg.jsonPath); err != nil {
			return err
		}
		cfg.log.Progressf("wrote %s", cfg.jsonPath)
	}
	return nil
}
