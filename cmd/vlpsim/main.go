// Vlpsim runs one branch predictor over one workload and reports its
// misprediction rate — the single-configuration counterpart of
// cmd/paperrepro.
//
// The predictor is named by the factory's spec grammar, either as a bare
// scheme name configured with flags or as one self-contained string:
//
//	vlpsim -bench gcc -class cond -pred gshare -budget 16384
//	vlpsim -bench gcc -class cond -pred gshare:budget=16KB
//
// Variable length path prediction with a profile from cmd/vlpprof:
//
//	vlpprof -bench gcc -class cond -budget 16384 -o gcc.prof
//	vlpsim  -bench gcc -class cond -pred vlp:budget=16KB,profile=gcc.prof
//
// Indirect prediction from a trace file:
//
//	vlpsim -trace gcc.vlpt -class indirect -pred path:budget=2KB
//
// Several ";"-separated specs replay fused — one pass over the trace
// steps every predictor (spec bodies keep "," for their own options):
//
//	vlpsim -bench gcc -pred "gshare:budget=16KB;flp:budget=16KB,length=6"
//
// A run can be split at any record boundary: -save-state writes the
// predictor's post-run state as a vlps/v1 snapshot, and a later run
// restores it with -load-state, skipping the already-replayed prefix
// with -skip — the two halves report exactly what the unbroken run
// would have:
//
//	vlpsim -bench gcc -pred vlp:budget=16KB,profile=gcc.prof -n 100000 \
//	    -save-state half.vlps
//	vlpsim -bench gcc -pred vlp:budget=16KB,profile=gcc.prof -n 200000 \
//	    -load-state half.vlps -skip 100000
//
// Observability: -json writes a bench report (misprediction rate, wall
// time, branches/sec, allocation) in the repository's stable schema;
// -cpuprofile/-memprofile/-exectrace capture pprof/runtime-trace data;
// -v narrates progress to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bpred"
	"repro/internal/cliutil"
	"repro/internal/engine/pool"
	"repro/internal/factory"
	"repro/internal/obs"
	"repro/internal/runx"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/trace"
)

// config carries every run parameter; flags parse straight into it.
type config struct {
	bench     string
	input     string
	tracePath string
	n         int
	class     string
	pred      string
	budget    int
	length    int
	profPath  string
	returns   bool
	norotate  bool
	topMiss   int
	jsonPath  string
	saveState string
	loadState string
	skip      int
	timeout   time.Duration
	log       *obs.Logger
}

func main() {
	var cfg config
	var verbose bool
	var prof obs.ProfileFlags
	flag.StringVar(&cfg.bench, "bench", "", "benchmark name")
	flag.StringVar(&cfg.input, "input", "test", "input set: test or profile")
	flag.StringVar(&cfg.tracePath, "trace", "", "trace file (alternative to -bench)")
	flag.IntVar(&cfg.n, "n", 250000, "suite base trace length for -bench")
	flag.StringVar(&cfg.class, "class", "cond", "branch class: cond or indirect")
	flag.StringVar(&cfg.pred, "pred", "gshare",
		"predictor spec, e.g. gshare:budget=16KB, or several separated by \";\" for one fused pass; cond ("+
			strings.Join(factory.CondNames(), ", ")+"); indirect ("+strings.Join(factory.IndirectNames(), ", ")+")")
	flag.IntVar(&cfg.budget, "budget", 16*1024, "hardware budget in bytes (default when the spec has no budget=)")
	flag.IntVar(&cfg.length, "length", 0, "fixed path length for -pred flp")
	flag.StringVar(&cfg.profPath, "profile", "", "profile file for -pred vlp (from vlpprof)")
	flag.BoolVar(&cfg.returns, "store-returns", false, "insert return targets into the THB (paper §3.2 ablation)")
	flag.BoolVar(&cfg.norotate, "no-rotation", false, "disable the per-depth hash rotation (paper §3.3 ablation)")
	flag.IntVar(&cfg.topMiss, "top", 0, "also report the N worst static branches")
	flag.StringVar(&cfg.jsonPath, "json", "", "write a bench report (repro-bench/v1 schema) to this file")
	flag.StringVar(&cfg.saveState, "save-state", "", "write the predictor's post-run state as a vlps/v1 snapshot (single -pred spec only)")
	flag.StringVar(&cfg.loadState, "load-state", "", "restore the predictor from a vlps/v1 snapshot before the run; combine with -skip to resume a trace mid-stream")
	flag.IntVar(&cfg.skip, "skip", 0, "discard the first N trace records before replaying (the resume offset for -load-state)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the run after this long (0 = no deadline); Ctrl-C cancels cleanly either way")
	workers := flag.Int("workers", 0, "bound the fused kernel's shard pool (0 = CPU count)")
	flag.BoolVar(&verbose, "v", false, "narrate progress to stderr")
	prof.Register(flag.CommandLine)
	flag.Parse()
	pool.SetCap(*workers)
	cfg.log = obs.NewLogger(os.Stderr, verbose)

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpsim:", err)
		os.Exit(1)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	if cfg.timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, cfg.timeout)
		defer cancelTimeout()
	}
	err = run(ctx, cfg)
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpsim:", err)
		os.Exit(1)
	}
}

// resolveSpecs parses the -pred value, which may name several
// predictors separated by ";" (spec bodies use "," internally). All of
// them replay fused in one pass over the trace.
func resolveSpecs(cfg config) ([]factory.Spec, error) {
	parts := strings.Split(cfg.pred, ";")
	specs := make([]factory.Spec, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, err := resolveSpec(cfg, part)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -pred")
	}
	return specs, nil
}

// resolveSpec merges one -pred spec string with the individual flags:
// values inside the spec win, flags fill whatever the spec left unset.
func resolveSpec(cfg config, pred string) (factory.Spec, error) {
	spec, err := factory.ParseSpec(pred)
	if err != nil {
		return factory.Spec{}, err
	}
	if spec.BudgetBytes == 0 {
		spec.BudgetBytes = cfg.budget
	}
	if spec.FixedLength == 0 {
		spec.FixedLength = cfg.length
	}
	if spec.ProfilePath == "" {
		spec.ProfilePath = cfg.profPath
	}
	spec.Options.StoreReturns = spec.Options.StoreReturns || cfg.returns
	spec.Options.NoRotation = spec.Options.NoRotation || cfg.norotate
	return spec, nil
}

// simData is the Data payload of vlpsim's bench report.
type simData struct {
	Predictor   string  `json:"predictor"`
	SizeBytes   int     `json:"size_bytes"`
	Branches    int64   `json:"branches"`
	Mispredicts int64   `json:"mispredicts"`
	MissRate    float64 `json:"miss_rate"`
	MissPercent float64 `json:"miss_percent"`
}

func run(ctx context.Context, cfg config) error {
	src, err := cliutil.Resolve(ctx, cliutil.SourceSpec{
		Bench: cfg.bench, Input: cfg.input, Records: cfg.n, TracePath: cfg.tracePath,
	})
	if err != nil {
		return err
	}
	if cfg.skip > 0 {
		src = trace.NewSkip(src, cfg.skip)
	}
	cfg.log.Progressf("trace source ready")
	specs, err := resolveSpecs(cfg)
	if err != nil {
		return err
	}
	if (cfg.saveState != "" || cfg.loadState != "") && len(specs) != 1 {
		// A snapshot file carries exactly one predictor's state; fused
		// multi-spec runs have no single state to save or restore.
		return fmt.Errorf("-save-state/-load-state need a single -pred spec, got %d", len(specs))
	}

	// Several ";"-separated specs replay fused — one pass over the
	// trace stepping every predictor — through the same kernel the
	// experiment suite uses. A single spec is the K=1 case of the same
	// call and prints exactly what it always has.
	opts := sim.Options{PerPC: cfg.topMiss > 0}
	preds := make([]bpred.Predictor, len(specs))
	var replay func() []sim.Result
	switch cfg.class {
	case "cond":
		cps := make([]bpred.CondPredictor, len(specs))
		for i, spec := range specs {
			cp, err := spec.Cond()
			if err != nil {
				return err
			}
			cps[i], preds[i] = cp, cp
			cfg.log.Progressf("built %s (%d bytes)", cp.Name(), cp.SizeBytes())
		}
		replay = func() []sim.Result { return sim.RunManyCond(ctx, cps, src, opts) }
	case "indirect":
		ips := make([]bpred.IndirectPredictor, len(specs))
		for i, spec := range specs {
			ip, err := spec.Indirect()
			if err != nil {
				return err
			}
			ips[i], preds[i] = ip, ip
			cfg.log.Progressf("built %s (%d bytes)", ip.Name(), ip.SizeBytes())
		}
		replay = func() []sim.Result { return sim.RunManyIndirect(ctx, ips, src, opts) }
	default:
		return fmt.Errorf("unknown class %q (want cond or indirect)", cfg.class)
	}
	if cfg.loadState != "" {
		// Restore before the first record replays: with -skip set to the
		// snapshot's position, the run continues bit-identically where
		// the saving run stopped.
		sn, err := snap.LoadFile(cfg.loadState)
		if err != nil {
			return err
		}
		if err := sn.Restore(cfg.class, specs[0].String(), preds[0]); err != nil {
			return err
		}
		cfg.log.Progressf("restored %s state from %s", preds[0].Name(), cfg.loadState)
	}
	results := replay()
	for i := range results {
		if err := results[i].Err; err != nil {
			// A canceled or truncated run measured only part of the
			// trace; refuse to report the partial counts as a result.
			return fmt.Errorf("run aborted after %d branches: %w", results[i].Branches, err)
		}
	}
	cfg.log.Progressf("run finished: %s", results[0].Metrics)

	if cfg.saveState != "" {
		sn, err := snap.Capture(cfg.class, specs[0].String(), preds[0])
		if err != nil {
			return err
		}
		if err := sn.SaveFile(cfg.saveState); err != nil {
			return err
		}
		cfg.log.Progressf("saved %s state to %s", preds[0].Name(), cfg.saveState)
	}

	for i := range results {
		res := &results[i]
		fmt.Println(res.String())
		fmt.Printf("cost: %s\n", res.Metrics)
		if cfg.topMiss > 0 {
			fmt.Printf("worst %d static branches:\n", cfg.topMiss)
			for _, pc := range res.WorstPCs(cfg.topMiss) {
				st := res.PerPC[pc]
				fmt.Printf("  %v  %d/%d mispredicted (%.1f%%)\n",
					pc, st.Mispredicts, st.Branches, 100*float64(st.Mispredicts)/float64(st.Branches))
			}
		}
	}

	if cfg.jsonPath != "" {
		rep := obs.NewReport("vlpsim", "single predictor run")
		rep.SetParam("class", cfg.class)
		data := make([]simData, len(results))
		specStrs := make([]string, len(specs))
		for i := range results {
			specStrs[i] = specs[i].String()
			data[i] = simData{
				Predictor:   results[i].Predictor,
				SizeBytes:   preds[i].SizeBytes(),
				Branches:    results[i].Branches,
				Mispredicts: results[i].Mispredicts,
				MissRate:    results[i].Rate(),
				MissPercent: results[i].Percent(),
			}
		}
		rep.SetParam("pred", strings.Join(specStrs, ";"))
		if cfg.tracePath != "" {
			rep.SetParam("trace", cfg.tracePath)
		} else {
			rep.SetParam("bench", cfg.bench)
			rep.SetParam("input", cfg.input)
			rep.SetParam("records", cfg.n)
		}
		rep.Metrics = results[0].Metrics
		if len(data) == 1 {
			// The single-spec report shape is stable: downstream greps
			// (serve_smoke.sh) read .data.miss_rate directly.
			rep.Data = data[0]
		} else {
			rep.Data = data
		}
		if err := rep.Write(cfg.jsonPath); err != nil {
			return err
		}
		cfg.log.Progressf("wrote %s", cfg.jsonPath)
	}
	return nil
}
