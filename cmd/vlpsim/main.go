// Vlpsim runs one branch predictor over one workload and reports its
// misprediction rate — the single-configuration counterpart of
// cmd/paperrepro.
//
// Conditional prediction with gshare:
//
//	vlpsim -bench gcc -class cond -pred gshare -budget 16384
//
// Variable length path prediction with a profile from cmd/vlpprof:
//
//	vlpprof -bench gcc -class cond -budget 16384 -o gcc.prof
//	vlpsim  -bench gcc -class cond -pred vlp -budget 16384 -profile gcc.prof
//
// Indirect prediction from a trace file:
//
//	vlpsim -trace gcc.vlpt -class indirect -pred path -budget 2048
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/factory"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vlp"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark name")
		input     = flag.String("input", "test", "input set: test or profile")
		tracePath = flag.String("trace", "", "trace file (alternative to -bench)")
		n         = flag.Int("n", 250000, "suite base trace length for -bench")
		class     = flag.String("class", "cond", "branch class: cond or indirect")
		pred      = flag.String("pred", "gshare", "predictor: cond ("+strings.Join(factory.CondNames(), ", ")+
			"); indirect ("+strings.Join(factory.IndirectNames(), ", ")+")")
		budget   = flag.Int("budget", 16*1024, "hardware budget in bytes")
		length   = flag.Int("length", 0, "fixed path length for -pred flp")
		profPath = flag.String("profile", "", "profile file for -pred vlp (from vlpprof)")
		returns  = flag.Bool("store-returns", false, "insert return targets into the THB (paper §3.2 ablation)")
		norotate = flag.Bool("no-rotation", false, "disable the per-depth hash rotation (paper §3.3 ablation)")
		topMiss  = flag.Int("top", 0, "also report the N worst static branches")
	)
	flag.Parse()
	if err := run(*bench, *input, *tracePath, *n, *class, *pred, *budget, *length,
		*profPath, *returns, *norotate, *topMiss); err != nil {
		fmt.Fprintln(os.Stderr, "vlpsim:", err)
		os.Exit(1)
	}
}

func run(bench, input, tracePath string, n int, class, pred string, budget, length int,
	profPath string, returns, norotate bool, topMiss int) error {
	src, err := cliutil.Resolve(cliutil.SourceSpec{
		Bench: bench, Input: input, Records: n, TracePath: tracePath,
	})
	if err != nil {
		return err
	}
	var prof *profile.Profile
	if profPath != "" {
		if prof, err = profile.Load(profPath); err != nil {
			return err
		}
	}
	opts := vlp.Options{StoreReturns: returns, NoRotation: norotate}

	var res sim.Result
	switch class {
	case "cond":
		p, err := factory.NewCond(factory.CondSpec{
			Name: pred, BudgetBytes: budget, FixedLength: length, Profile: prof, Options: opts,
		})
		if err != nil {
			return err
		}
		res = sim.RunCond(p, src, sim.Options{PerPC: topMiss > 0})
	case "indirect":
		p, err := factory.NewIndirect(factory.IndirectSpec{
			Name: pred, BudgetBytes: budget, FixedLength: length, Profile: prof, Options: opts,
		})
		if err != nil {
			return err
		}
		res = sim.RunIndirect(p, src, sim.Options{PerPC: topMiss > 0})
	default:
		return fmt.Errorf("unknown class %q (want cond or indirect)", class)
	}

	fmt.Println(res.String())
	if topMiss > 0 {
		fmt.Printf("worst %d static branches:\n", topMiss)
		for _, pc := range res.WorstPCs(topMiss) {
			st := res.PerPC[pc]
			fmt.Printf("  %v  %d/%d mispredicted (%.1f%%)\n",
				pc, st.Mispredicts, st.Branches, 100*float64(st.Mispredicts)/float64(st.Branches))
		}
	}
	return nil
}
