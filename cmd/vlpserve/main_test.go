package main

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndDrains drives the real entry point: bind :0, publish
// the address via -addr-file, answer a request, then exit cleanly when
// the signal context is canceled.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", addrFile, "workers=2,drain=2s", true, "", false, "", "", nil, nil)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("address file never appeared")
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// The legacy spelling still answers, flagged deprecated.
	legacy, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("legacy healthz: %v", err)
	}
	legacy.Body.Close()
	if legacy.StatusCode != http.StatusOK || legacy.Header.Get("Deprecation") != "true" {
		t.Fatalf("legacy healthz: status %d, Deprecation %q", legacy.StatusCode, legacy.Header.Get("Deprecation"))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on cancel, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "127.0.0.1:0", "", "max-sessions=0", false, "", false, "", "", nil, nil); err == nil {
		t.Error("invalid limits accepted")
	}
	if err := run(ctx, "127.0.0.1:0", "", "nope=1", false, "", false, "", "", nil, nil); err == nil {
		t.Error("unknown limits key accepted")
	}
	if err := run(ctx, "256.0.0.1:99999", "", "", false, "", false, "", "", nil, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}
