// Vlpserve runs the prediction service: a long-lived HTTP server that
// holds named predictor sessions and replays streamed trace chunks
// through them (see internal/serve and DESIGN.md §10).
//
// Start with the default degradation policy:
//
//	vlpserve -addr 127.0.0.1:8080
//
// Tune the policy with the limits grammar:
//
//	vlpserve -addr :8080 -limits max-sessions=128,idle-ttl=30s,max-body=4MB,workers=16
//
// Then create a session and stream chunks at it (cmd/vlpload automates
// this):
//
//	curl -d '{"id":"s1","class":"cond","spec":"gshare:budget=16KB"}' \
//	    http://127.0.0.1:8080/v1/sessions
//	curl --data-binary @chunk.vlpt http://127.0.0.1:8080/v1/sessions/s1/chunks
//	curl http://127.0.0.1:8080/v1/metrics
//
// Every route lives under /v1/; the pre-versioning spellings
// (/metrics, /healthz, /v1/sessions/{id}/predict) still answer but
// carry a Deprecation header. Failed requests share one JSON error
// envelope: {"code", "message", "retryable"}.
//
// The server is also a sweep worker: POST /v1/jobs runs one experiment
// cell for the cmd/vlpsweep coordinator (disable with -jobs=false;
// -tracedir points cells at recorded benchmark traces; -snapdir
// checkpoints column replays so a requeued cell resumes mid-trace).
//
// -spill-dir enables session hibernation: every session's predictor
// state is snapshotted write-through after each chunk, evicted and
// drained sessions spill to disk, and a restarted server with the same
// directory resumes every session bit-identically — even after kill -9
// (scripts/snap_smoke.sh proves exactly that). Sessions also expose
// GET/POST /v1/sessions/{id}/snapshot for explicit snapshot download
// and restore.
//
// SIGINT/SIGTERM drain in-flight requests and exit cleanly; -addr-file
// writes the bound address (for -addr :0 orchestration, as the
// serve-smoke CI stage does).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/engine/pool"
	"repro/internal/obs"
	"repro/internal/runx"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		limits   = flag.String("limits", "", "degradation policy overrides, e.g. max-sessions=128,idle-ttl=30s,max-body=4MB,workers=16,drain=5s")
		jobs     = flag.Bool("jobs", true, "serve POST /v1/jobs sweep cells (cmd/vlpsweep workers)")
		traceDir = flag.String("tracedir", "", "recorded benchmark traces for sweep cells (<dir>/<bench>.vlpt)")
		perCell  = flag.Bool("percell", false, "run sweep cells on the sequential per-cell path instead of the fused column kernel (oracle mode)")
		spillDir = flag.String("spill-dir", "", "hibernate sessions to this directory (write-through snapshots; a restart with the same dir resumes every session bit-identically)")
		snapDir  = flag.String("snapdir", "", "checkpoint sweep-cell column replays to this directory so a requeued cell resumes instead of replaying from record zero")
		chaosStr = flag.String("chaos", "", "server-side fault injection spec, e.g. chaos:seed=7,burst5xx=0.05,reset=0.02,truncate=0.02,stall=0.01,snap=0.1")
		workers  = flag.Int("workers", 0, "bound every worker pool in the process, including the admission default (0 = CPU count); the limits grammar's workers= still overrides admission")
		verbose  = flag.Bool("v", false, "narrate requests and evictions to stderr")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()
	// Set the process-wide pool ceiling before DefaultLimits reads it
	// for the admission semaphore default.
	pool.SetCap(*workers)
	log := obs.NewLogger(os.Stderr, *verbose)

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpserve:", err)
		os.Exit(1)
	}
	var inj *chaos.Injector
	if *chaosStr != "" {
		spec, serr := chaos.ParseSpec(*chaosStr)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "vlpserve:", serr)
			os.Exit(2)
		}
		inj = chaos.New(spec)
	}
	ctx, cancelSignals := runx.WithSignals(context.Background())
	err = run(ctx, *addr, *addrFile, *limits, *jobs, *traceDir, *perCell, *spillDir, *snapDir, inj, log)
	cancelSignals()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlpserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr, addrFile, limitsStr string, jobs bool, traceDir string, perCell bool, spillDir, snapDir string, inj *chaos.Injector, log *obs.Logger) error {
	limits, err := serve.ParseLimits(serve.DefaultLimits(), limitsStr)
	if err != nil {
		return err
	}
	srv, err := serve.New(limits, log)
	if err != nil {
		return err
	}
	if spillDir != "" {
		srv.SetSpillDir(spillDir)
	}
	if jobs {
		runner := dist.NewRunner(traceDir, log)
		runner.SetPerCell(perCell)
		runner.SetSnapDir(snapDir)
		srv.SetJobRunner(runner)
	}
	if inj != nil {
		// Mounted outermost — outside the panic-recovery boundary — so an
		// injected reset's http.ErrAbortHandler reaches net/http and
		// actually drops the connection (see internal/chaos).
		srv.SetMiddleware(inj.Middleware)
		if inj.Spec().SnapP > 0 {
			srv.SetSnapFault(inj.SnapFault)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		// Atomic write so a watcher never reads a half-written address.
		if err := runx.AtomicWriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Printf("vlpserve: listening on %s (max-sessions=%d idle-ttl=%v max-body=%d workers=%d)\n",
		bound, limits.MaxSessions, limits.IdleTTL, limits.MaxBodyBytes, limits.Workers)
	err = srv.Serve(ctx, ln)
	if inj != nil {
		fmt.Printf("chaos: injected %s\n", inj.CountsString())
	}
	return err
}
